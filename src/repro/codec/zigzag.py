"""Zig-zag scanning and run-length coding of quantised blocks."""

from __future__ import annotations

from typing import List, Tuple

import numpy as np

from repro.codec.blocks import BLOCK


def _zigzag_order(n: int = BLOCK) -> np.ndarray:
    """Indices of the zig-zag scan for an ``n x n`` block."""
    # Anti-diagonals in order; odd diagonals are walked with the row
    # index ascending ((0,1) before (1,0)), even ones descending — the
    # standard JPEG zig-zag.
    order = sorted(
        ((i, j) for i in range(n) for j in range(n)),
        key=lambda ij: (
            ij[0] + ij[1],
            ij[0] if (ij[0] + ij[1]) % 2 else -ij[0],
        ),
    )
    flat = np.array([i * n + j for i, j in order], dtype=np.int64)
    return flat


#: Flat scan order for 8x8 blocks (index into the row-major block).
ZIGZAG_ORDER = _zigzag_order()


def zigzag(block: np.ndarray) -> np.ndarray:
    """Scan an 8x8 block into a 64-vector in zig-zag order."""
    return block.reshape(-1)[ZIGZAG_ORDER]


def inverse_zigzag(vector: np.ndarray) -> np.ndarray:
    """Rebuild the 8x8 block from its zig-zag vector."""
    block = np.zeros(BLOCK * BLOCK, dtype=vector.dtype)
    block[ZIGZAG_ORDER] = vector
    return block.reshape(BLOCK, BLOCK)


def run_length_encode(vector: np.ndarray) -> List[Tuple[int, int]]:
    """Encode a zig-zag vector as ``(zero_run, value)`` pairs.

    A terminating ``(0, 0)`` pair marks end-of-block once only zeros
    remain, as in JPEG's EOB symbol.
    """
    pairs: List[Tuple[int, int]] = []
    run = 0
    values = [int(v) for v in vector]
    last_nonzero = -1
    for index, value in enumerate(values):
        if value != 0:
            last_nonzero = index
    for value in values[: last_nonzero + 1]:
        if value == 0:
            run += 1
        else:
            pairs.append((run, value))
            run = 0
    pairs.append((0, 0))
    return pairs


def run_length_decode(pairs: List[Tuple[int, int]], length: int = 64) -> np.ndarray:
    """Decode ``(zero_run, value)`` pairs back into a vector."""
    values: List[int] = []
    for run, value in pairs:
        if run == 0 and value == 0:
            break
        values.extend([0] * run)
        values.append(value)
    if len(values) > length:
        raise ValueError("run-length data exceeds block size")
    values.extend([0] * (length - len(values)))
    return np.array(values, dtype=np.float64)
