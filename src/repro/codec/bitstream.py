"""Bit-level reading and writing.

Both the JPEG-style and the H.264-style codecs serialise symbols into a
packed big-endian bitstream; these two classes are the only place bit
twiddling happens.
"""

from __future__ import annotations


class BitWriter:
    """Accumulates bits most-significant-first into a byte string."""

    def __init__(self) -> None:
        self._bytes = bytearray()
        self._current = 0
        self._filled = 0

    def write_bit(self, bit: int) -> None:
        """Append one bit (0 or 1)."""
        self._current = (self._current << 1) | (bit & 1)
        self._filled += 1
        if self._filled == 8:
            self._bytes.append(self._current)
            self._current = 0
            self._filled = 0

    def write_bits(self, value: int, count: int) -> None:
        """Append ``count`` bits of ``value``, MSB first."""
        if count < 0:
            raise ValueError("bit count must be >= 0")
        if value < 0:
            raise ValueError("value must be non-negative")
        for shift in range(count - 1, -1, -1):
            self.write_bit((value >> shift) & 1)

    def getvalue(self) -> bytes:
        """The padded byte string (trailing zero bits fill the last byte)."""
        result = bytearray(self._bytes)
        if self._filled:
            result.append(self._current << (8 - self._filled))
        return bytes(result)

    @property
    def bit_length(self) -> int:
        """Bits written so far."""
        return len(self._bytes) * 8 + self._filled


class BitReader:
    """Reads bits most-significant-first from a byte string."""

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._position = 0

    def read_bit(self) -> int:
        """Read one bit; raises :class:`EOFError` past the end."""
        byte_index, bit_index = divmod(self._position, 8)
        if byte_index >= len(self._data):
            raise EOFError("bitstream exhausted")
        self._position += 1
        return (self._data[byte_index] >> (7 - bit_index)) & 1

    def read_bits(self, count: int) -> int:
        """Read ``count`` bits as an unsigned integer."""
        value = 0
        for _ in range(count):
            value = (value << 1) | self.read_bit()
        return value

    @property
    def bits_remaining(self) -> int:
        """Bits left in the stream (including padding)."""
        return len(self._data) * 8 - self._position
