"""Block motion estimation and compensation (the H.264 inter path)."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.codec.blocks import BLOCK


def motion_estimate(
    current: np.ndarray,
    reference: np.ndarray,
    top: int,
    left: int,
    search_range: int = 4,
    block: int = BLOCK,
) -> Tuple[int, int, float]:
    """Full-search motion estimation for one block.

    Finds the integer motion vector ``(dy, dx)`` within ``search_range``
    minimising the sum of absolute differences between the ``block x
    block`` patch of ``current`` at ``(top, left)`` and the displaced
    patch of ``reference``.  Ties resolve to the smallest ``(|dy| + |dx|,
    dy, dx)`` so the search is deterministic.

    Returns ``(dy, dx, sad)``.
    """
    height, width = reference.shape
    patch = current[top: top + block, left: left + block].astype(np.int64)
    best: Tuple[int, int, float] = (0, 0, float("inf"))
    candidates = []
    for dy in range(-search_range, search_range + 1):
        for dx in range(-search_range, search_range + 1):
            y, x = top + dy, left + dx
            if y < 0 or x < 0 or y + block > height or x + block > width:
                continue
            candidate = reference[y: y + block, x: x + block].astype(np.int64)
            sad = float(np.abs(patch - candidate).sum())
            candidates.append((sad, abs(dy) + abs(dx), dy, dx))
    if not candidates:
        return (0, 0, float(np.abs(patch).sum()))
    sad, _, dy, dx = min(candidates)
    return (dy, dx, sad)


def motion_compensate(
    reference: np.ndarray,
    motion: np.ndarray,
    block: int = BLOCK,
) -> np.ndarray:
    """Build the motion-compensated prediction frame.

    ``motion`` has shape ``(rows, cols, 2)`` holding ``(dy, dx)`` per
    block of the padded frame grid.
    """
    rows, cols, _ = motion.shape
    height, width = rows * block, cols * block
    if reference.shape != (height, width):
        raise ValueError("reference shape does not match the motion grid")
    predicted = np.zeros_like(reference)
    for r in range(rows):
        for c in range(cols):
            dy, dx = int(motion[r, c, 0]), int(motion[r, c, 1])
            y, x = r * block + dy, c * block + dx
            predicted[
                r * block: (r + 1) * block, c * block: (c + 1) * block
            ] = reference[y: y + block, x: x + block]
    return predicted
