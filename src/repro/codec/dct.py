"""The 8x8 type-II discrete cosine transform.

Implemented as a pair of orthonormal matrix multiplications
(``D @ X @ D.T``), which is exact, vectorises over stacked blocks, and
round-trips to floating-point precision — determinism is what the process
networks need, not speed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.codec.blocks import BLOCK


def _dct_matrix(n: int = BLOCK) -> np.ndarray:
    """The orthonormal DCT-II basis matrix of size ``n``."""
    matrix = np.zeros((n, n), dtype=np.float64)
    for k in range(n):
        scale = math.sqrt(1.0 / n) if k == 0 else math.sqrt(2.0 / n)
        for i in range(n):
            matrix[k, i] = scale * math.cos(math.pi * (2 * i + 1) * k / (2 * n))
    return matrix


_DCT = _dct_matrix()
_IDCT = _DCT.T


def dct2(blocks: np.ndarray) -> np.ndarray:
    """Forward 2-D DCT of one ``(8, 8)`` block or a stack ``(n, 8, 8)``."""
    return _DCT @ blocks @ _IDCT


def idct2(coefficients: np.ndarray) -> np.ndarray:
    """Inverse 2-D DCT (exact inverse of :func:`dct2`)."""
    return _IDCT @ coefficients @ _DCT
