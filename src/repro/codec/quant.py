"""Quantisation of DCT coefficients.

Uses the baseline-JPEG luminance table, scaled by a quality factor with
the libjpeg convention (quality 50 is the unscaled table).
"""

from __future__ import annotations

import numpy as np

#: The ISO/IEC 10918-1 Annex K luminance quantisation table.
JPEG_LUMA_QUANT = np.array(
    [
        [16, 11, 10, 16, 24, 40, 51, 61],
        [12, 12, 14, 19, 26, 58, 60, 55],
        [14, 13, 16, 24, 40, 57, 69, 56],
        [14, 17, 22, 29, 51, 87, 80, 62],
        [18, 22, 37, 56, 68, 109, 103, 77],
        [24, 35, 55, 64, 81, 104, 113, 92],
        [49, 64, 78, 87, 103, 121, 120, 101],
        [72, 92, 95, 98, 112, 100, 103, 99],
    ],
    dtype=np.float64,
)


def quality_scaled_table(quality: int, base: np.ndarray = JPEG_LUMA_QUANT) -> np.ndarray:
    """Scale a quantisation table by a JPEG quality factor (1..100)."""
    if not 1 <= quality <= 100:
        raise ValueError("quality must be in 1..100")
    if quality < 50:
        scale = 5000 / quality
    else:
        scale = 200 - 2 * quality
    table = np.floor((base * scale + 50) / 100)
    return np.clip(table, 1, 255)


def quantize(coefficients: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Quantise DCT coefficients to integers (round-half-away)."""
    scaled = coefficients / table
    return np.sign(scaled) * np.floor(np.abs(scaled) + 0.5)


def dequantize(levels: np.ndarray, table: np.ndarray) -> np.ndarray:
    """Reconstruct coefficients from quantised levels."""
    return levels * table
