"""Exponential-Golomb entropy coding (as used by H.264's CAVLC headers).

Unsigned exp-Golomb writes ``value + 1`` as ``leading_zeros`` zero bits
followed by the binary representation; signed values are mapped with the
H.264 zig-zag mapping ``v -> 2|v| - (v > 0)``.
"""

from __future__ import annotations

from repro.codec.bitstream import BitReader, BitWriter


def write_unsigned_exp_golomb(writer: BitWriter, value: int) -> None:
    """Write an unsigned integer (>= 0)."""
    if value < 0:
        raise ValueError("unsigned exp-Golomb needs value >= 0")
    code = value + 1
    length = code.bit_length()
    writer.write_bits(0, length - 1)
    writer.write_bits(code, length)


def read_unsigned_exp_golomb(reader: BitReader) -> int:
    """Read an unsigned integer."""
    zeros = 0
    while reader.read_bit() == 0:
        zeros += 1
        if zeros > 64:
            raise ValueError("malformed exp-Golomb code")
    code = 1
    for _ in range(zeros):
        code = (code << 1) | reader.read_bit()
    return code - 1


def write_signed_exp_golomb(writer: BitWriter, value: int) -> None:
    """Write a signed integer using the H.264 mapping."""
    mapped = 2 * value - 1 if value > 0 else -2 * value
    write_unsigned_exp_golomb(writer, mapped)


def read_signed_exp_golomb(reader: BitReader) -> int:
    """Read a signed integer using the H.264 mapping."""
    mapped = read_unsigned_exp_golomb(reader)
    if mapped % 2 == 1:
        return (mapped + 1) // 2
    return -(mapped // 2)
