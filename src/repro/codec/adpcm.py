"""The IMA ADPCM codec (4:1 compression of 16-bit PCM).

This is the standard IMA/DVI ADPCM algorithm — the paper's second
application is "the Adaptive Differential Pulse Code Modulation
application (encoder+decoder)" performing "a 4:1 compression, which is
reverted by the decoder" (Section 4.2).  Each 16-bit sample becomes a
4-bit code; the decoder reconstructs an approximation, and — crucially for
the fault-tolerance experiments — both directions are fully deterministic
given the input block and the initial predictor state.
"""

from __future__ import annotations

from dataclasses import dataclass
import numpy as np

#: IMA ADPCM step-size table (89 entries).
STEP_TABLE = np.array(
    [
        7, 8, 9, 10, 11, 12, 13, 14, 16, 17, 19, 21, 23, 25, 28, 31,
        34, 37, 41, 45, 50, 55, 60, 66, 73, 80, 88, 97, 107, 118, 130,
        143, 157, 173, 190, 209, 230, 253, 279, 307, 337, 371, 408, 449,
        494, 544, 598, 658, 724, 796, 876, 963, 1060, 1166, 1282, 1411,
        1552, 1707, 1878, 2066, 2272, 2499, 2749, 3024, 3327, 3660, 4026,
        4428, 4871, 5358, 5894, 6484, 7132, 7845, 8630, 9493, 10442,
        11487, 12635, 13899, 15289, 16818, 18500, 20350, 22385, 24623,
        27086, 29794, 32767,
    ],
    dtype=np.int32,
)

#: IMA ADPCM index adjustment table for the 3 magnitude bits.
INDEX_TABLE = np.array([-1, -1, -1, -1, 2, 4, 6, 8], dtype=np.int32)


@dataclass
class AdpcmState:
    """Predictor state carried across samples."""

    predictor: int = 0
    index: int = 0


class AdpcmCodec:
    """Block-oriented IMA ADPCM encoder/decoder.

    ``encode_block`` packs two 4-bit codes per byte; each block is coded
    independently from a zero predictor state so blocks are
    self-contained tokens (the networks pass one block per token).
    """

    def encode_block(self, samples: np.ndarray) -> bytes:
        """Encode a 1-D int16 array into packed 4-bit codes."""
        samples = np.asarray(samples, dtype=np.int64)
        state = AdpcmState()
        codes = bytearray()
        nibble_pending = None
        for sample in samples:
            code = self._encode_sample(int(sample), state)
            if nibble_pending is None:
                nibble_pending = code
            else:
                codes.append((nibble_pending << 4) | code)
                nibble_pending = None
        if nibble_pending is not None:
            codes.append(nibble_pending << 4)
        return bytes(codes)

    def decode_block(self, data: bytes, count: int) -> np.ndarray:
        """Decode ``count`` samples from packed codes."""
        state = AdpcmState()
        samples = np.zeros(count, dtype=np.int16)
        for i in range(count):
            byte = data[i // 2]
            code = (byte >> 4) & 0xF if i % 2 == 0 else byte & 0xF
            samples[i] = self._decode_sample(code, state)
        return samples

    def roundtrip_block(self, samples: np.ndarray) -> np.ndarray:
        """Encode then decode (what the paper's app pipeline computes)."""
        encoded = self.encode_block(samples)
        return self.decode_block(encoded, len(samples))

    # -- per-sample kernels -------------------------------------------------

    @staticmethod
    def _encode_sample(sample: int, state: AdpcmState) -> int:
        step = int(STEP_TABLE[state.index])
        delta = sample - state.predictor
        code = 0
        if delta < 0:
            code = 8
            delta = -delta
        if delta >= step:
            code |= 4
            delta -= step
        if delta >= step // 2:
            code |= 2
            delta -= step // 2
        if delta >= step // 4:
            code |= 1
        AdpcmCodec._update(code, state)
        return code

    @staticmethod
    def _decode_sample(code: int, state: AdpcmState) -> int:
        AdpcmCodec._update(code, state)
        return state.predictor

    @staticmethod
    def _update(code: int, state: AdpcmState) -> None:
        step = int(STEP_TABLE[state.index])
        difference = step >> 3
        if code & 4:
            difference += step
        if code & 2:
            difference += step >> 1
        if code & 1:
            difference += step >> 2
        if code & 8:
            state.predictor -= difference
        else:
            state.predictor += difference
        state.predictor = max(-32768, min(32767, state.predictor))
        state.index += int(INDEX_TABLE[code & 7])
        state.index = max(0, min(len(STEP_TABLE) - 1, state.index))
