"""Signal-processing primitives for the three applications.

The paper's workloads are real codecs (an MJPEG decoder, an ADPCM
encoder+decoder, an H.264 encoder).  This package implements working,
deterministic versions of the algorithms those applications are built
from, so the process networks in :mod:`repro.apps` transform real data and
the equivalence checks of Theorem 2 compare meaningful payloads:

* :mod:`~repro.codec.bitstream` — bit-level I/O;
* :mod:`~repro.codec.blocks` — 8x8 block tiling of frames;
* :mod:`~repro.codec.dct` — the 8x8 type-II DCT and its inverse;
* :mod:`~repro.codec.quant` — quantisation tables and (de)quantisation;
* :mod:`~repro.codec.zigzag` — zig-zag scan and run-length coding;
* :mod:`~repro.codec.entropy` — exponential-Golomb entropy coding;
* :mod:`~repro.codec.jpeg` — a baseline-JPEG-style frame codec (MJPEG);
* :mod:`~repro.codec.adpcm` — the IMA ADPCM sample codec;
* :mod:`~repro.codec.motion` — block motion estimation;
* :mod:`~repro.codec.h264` — a simplified H.264-style intra/inter encoder.
"""

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.blocks import blocks_to_frame, frame_to_blocks, pad_frame
from repro.codec.dct import dct2, idct2
from repro.codec.quant import (
    JPEG_LUMA_QUANT,
    dequantize,
    quality_scaled_table,
    quantize,
)
from repro.codec.zigzag import (
    ZIGZAG_ORDER,
    run_length_decode,
    run_length_encode,
    zigzag,
    inverse_zigzag,
)
from repro.codec.entropy import (
    read_signed_exp_golomb,
    read_unsigned_exp_golomb,
    write_signed_exp_golomb,
    write_unsigned_exp_golomb,
)
from repro.codec.jpeg import JpegCodec
from repro.codec.adpcm import AdpcmCodec
from repro.codec.motion import motion_estimate, motion_compensate
from repro.codec.h264 import H264Encoder, H264Decoder

__all__ = [
    "BitReader",
    "BitWriter",
    "blocks_to_frame",
    "frame_to_blocks",
    "pad_frame",
    "dct2",
    "idct2",
    "JPEG_LUMA_QUANT",
    "dequantize",
    "quality_scaled_table",
    "quantize",
    "ZIGZAG_ORDER",
    "run_length_decode",
    "run_length_encode",
    "zigzag",
    "inverse_zigzag",
    "read_signed_exp_golomb",
    "read_unsigned_exp_golomb",
    "write_signed_exp_golomb",
    "write_unsigned_exp_golomb",
    "JpegCodec",
    "AdpcmCodec",
    "motion_estimate",
    "motion_compensate",
    "H264Encoder",
    "H264Decoder",
]
