"""A simplified H.264-style encoder and decoder (the third application).

The paper's third workload is an H.264 encoder whose results are "similar"
to the other two (Section 4.2, omitted for space).  The encoder here keeps
the essential computational structure of H.264 baseline:

* group-of-pictures with periodic I-frames and motion-compensated
  P-frames (full-search integer motion vectors over 8x8 blocks);
* transform coding of the residual (8x8 DCT, QP-scaled quantisation);
* exp-Golomb entropy coding of motion vectors and coefficients;
* an in-loop reconstruction so encoder and decoder stay in sync
  (closed-loop prediction).

It is not bitstream-compatible with ITU-T H.264, but every stage is the
real algorithm at block granularity, and encode/decode round-trips are
deterministic — the property the fault-tolerance experiments require.
"""

from __future__ import annotations

import struct
from typing import List, Optional, Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.blocks import BLOCK, blocks_to_frame, frame_to_blocks, pad_frame
from repro.codec.dct import dct2, idct2
from repro.codec.entropy import (
    read_signed_exp_golomb,
    read_unsigned_exp_golomb,
    write_signed_exp_golomb,
    write_unsigned_exp_golomb,
)
from repro.codec.motion import motion_estimate
from repro.codec.quant import dequantize, quality_scaled_table, quantize
from repro.codec.zigzag import (
    inverse_zigzag,
    run_length_decode,
    run_length_encode,
    zigzag,
)

_HEADER = struct.Struct(">HHBB")  # height, width, quality, frame type
FRAME_I = 0
FRAME_P = 1


class H264Encoder:
    """A stateful GOP encoder.

    Parameters
    ----------
    width, height:
        Frame geometry (uint8 grayscale).
    quality:
        Quantisation quality (JPEG-style 1..100 scaling of the table).
    gop:
        I-frame period; frame 0 of each group is intra-coded.
    search_range:
        Motion search window in pixels.
    """

    def __init__(
        self,
        width: int,
        height: int,
        quality: int = 70,
        gop: int = 8,
        search_range: int = 4,
    ) -> None:
        if gop < 1:
            raise ValueError("gop must be >= 1")
        self.width = width
        self.height = height
        self.quality = quality
        self.gop = gop
        self.search_range = search_range
        self.table = quality_scaled_table(quality)
        self._frame_index = 0
        self._reference: Optional[np.ndarray] = None

    def reset(self) -> None:
        """Restart the GOP state (e.g. on a scene cut)."""
        self._frame_index = 0
        self._reference = None

    def encode_frame(self, frame: np.ndarray) -> bytes:
        """Encode the next frame of the sequence."""
        if frame.shape != (self.height, self.width):
            raise ValueError(
                f"expected frame shape {(self.height, self.width)}, "
                f"got {frame.shape}"
            )
        if frame.dtype != np.uint8:
            raise ValueError("frame must be uint8")
        intra = (
            self._reference is None or self._frame_index % self.gop == 0
        )
        padded = pad_frame(frame.astype(np.float64))
        if intra:
            payload, reconstruction = self._encode_intra(padded)
            frame_type = FRAME_I
        else:
            payload, reconstruction = self._encode_inter(padded)
            frame_type = FRAME_P
        self._reference = reconstruction
        self._frame_index += 1
        header = _HEADER.pack(self.height, self.width, self.quality, frame_type)
        return header + payload

    # -- intra path -----------------------------------------------------------

    def _encode_intra(self, padded: np.ndarray) -> Tuple[bytes, np.ndarray]:
        blocks = frame_to_blocks(padded - 128.0)
        levels = quantize(dct2(blocks), self.table)
        writer = BitWriter()
        _write_blocks(writer, levels)
        reconstruction = blocks_to_frame(
            idct2(dequantize(levels, self.table)), padded.shape
        ) + 128.0
        return writer.getvalue(), np.clip(reconstruction, 0, 255)

    # -- inter path -----------------------------------------------------------

    def _encode_inter(self, padded: np.ndarray) -> Tuple[bytes, np.ndarray]:
        reference = self._reference
        rows = padded.shape[0] // BLOCK
        cols = padded.shape[1] // BLOCK
        writer = BitWriter()
        predicted = np.zeros_like(padded)
        motion: List[Tuple[int, int]] = []
        for r in range(rows):
            for c in range(cols):
                dy, dx, _sad = motion_estimate(
                    padded, reference, r * BLOCK, c * BLOCK,
                    self.search_range,
                )
                motion.append((dy, dx))
                y, x = r * BLOCK + dy, c * BLOCK + dx
                predicted[
                    r * BLOCK: (r + 1) * BLOCK, c * BLOCK: (c + 1) * BLOCK
                ] = reference[y: y + BLOCK, x: x + BLOCK]
        for dy, dx in motion:
            write_signed_exp_golomb(writer, dy)
            write_signed_exp_golomb(writer, dx)
        residual_blocks = frame_to_blocks(padded - predicted)
        levels = quantize(dct2(residual_blocks), self.table)
        _write_blocks(writer, levels)
        reconstruction = predicted + blocks_to_frame(
            idct2(dequantize(levels, self.table)), padded.shape
        )
        return writer.getvalue(), np.clip(reconstruction, 0, 255)


class H264Decoder:
    """Decoder mirroring :class:`H264Encoder` (closed-loop identical)."""

    def __init__(self) -> None:
        self._reference: Optional[np.ndarray] = None

    def decode_frame(self, data: bytes) -> np.ndarray:
        """Decode one frame produced by :class:`H264Encoder`."""
        height, width, quality, frame_type = _HEADER.unpack_from(data)
        table = quality_scaled_table(quality)
        reader = BitReader(data[_HEADER.size:])
        padded_h = height + ((-height) % BLOCK)
        padded_w = width + ((-width) % BLOCK)
        rows, cols = padded_h // BLOCK, padded_w // BLOCK
        if frame_type == FRAME_I:
            levels = _read_blocks(reader, rows * cols)
            padded = blocks_to_frame(
                idct2(dequantize(levels, table)), (padded_h, padded_w)
            ) + 128.0
        else:
            if self._reference is None:
                raise ValueError("P-frame before any I-frame")
            motion = np.zeros((rows, cols, 2), dtype=np.int64)
            for r in range(rows):
                for c in range(cols):
                    motion[r, c, 0] = read_signed_exp_golomb(reader)
                    motion[r, c, 1] = read_signed_exp_golomb(reader)
            predicted = np.zeros((padded_h, padded_w), dtype=np.float64)
            for r in range(rows):
                for c in range(cols):
                    dy, dx = int(motion[r, c, 0]), int(motion[r, c, 1])
                    y, x = r * BLOCK + dy, c * BLOCK + dx
                    predicted[
                        r * BLOCK: (r + 1) * BLOCK,
                        c * BLOCK: (c + 1) * BLOCK,
                    ] = self._reference[y: y + BLOCK, x: x + BLOCK]
            levels = _read_blocks(reader, rows * cols)
            padded = predicted + blocks_to_frame(
                idct2(dequantize(levels, table)), (padded_h, padded_w)
            )
        padded = np.clip(padded, 0, 255)
        self._reference = padded
        frame = padded[:height, :width]
        return np.round(frame).astype(np.uint8)


def _write_blocks(writer: BitWriter, levels: np.ndarray) -> None:
    """Serialise quantised blocks with differential DC + RLE AC coding."""
    previous_dc = 0
    for block in levels:
        scanned = zigzag(block).astype(np.int64)
        dc = int(scanned[0])
        write_signed_exp_golomb(writer, dc - previous_dc)
        previous_dc = dc
        for run, value in run_length_encode(scanned[1:]):
            write_unsigned_exp_golomb(writer, run)
            write_signed_exp_golomb(writer, value)


def _read_blocks(reader: BitReader, count: int) -> np.ndarray:
    """Inverse of :func:`_write_blocks`."""
    blocks = np.zeros((count, BLOCK, BLOCK), dtype=np.float64)
    previous_dc = 0
    for index in range(count):
        dc = previous_dc + read_signed_exp_golomb(reader)
        previous_dc = dc
        pairs: List[Tuple[int, int]] = []
        while True:
            run = read_unsigned_exp_golomb(reader)
            value = read_signed_exp_golomb(reader)
            pairs.append((run, value))
            if run == 0 and value == 0:
                break
        vector = np.concatenate(
            ([float(dc)], run_length_decode(pairs, BLOCK * BLOCK - 1))
        )
        blocks[index] = inverse_zigzag(vector)
    return blocks
