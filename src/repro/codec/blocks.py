"""Frame <-> 8x8 block tiling."""

from __future__ import annotations

from typing import Tuple

import numpy as np

#: Transform block edge length used by both frame codecs.
BLOCK = 8


def pad_frame(frame: np.ndarray, block: int = BLOCK) -> np.ndarray:
    """Edge-replicate a 2-D frame so both dimensions divide ``block``."""
    if frame.ndim != 2:
        raise ValueError("frame must be 2-D (grayscale)")
    height, width = frame.shape
    pad_h = (-height) % block
    pad_w = (-width) % block
    if pad_h == 0 and pad_w == 0:
        return frame
    return np.pad(frame, ((0, pad_h), (0, pad_w)), mode="edge")


def frame_to_blocks(frame: np.ndarray, block: int = BLOCK) -> np.ndarray:
    """Tile a padded frame into an array of shape ``(n, block, block)``.

    Blocks are ordered row-major over the block grid.
    """
    frame = pad_frame(frame, block)
    height, width = frame.shape
    rows, cols = height // block, width // block
    tiled = frame.reshape(rows, block, cols, block).swapaxes(1, 2)
    return tiled.reshape(rows * cols, block, block)


def blocks_to_frame(
    blocks: np.ndarray, shape: Tuple[int, int], block: int = BLOCK
) -> np.ndarray:
    """Reassemble blocks into a frame and crop to ``shape``."""
    height, width = shape
    padded_h = height + ((-height) % block)
    padded_w = width + ((-width) % block)
    rows, cols = padded_h // block, padded_w // block
    if blocks.shape[0] != rows * cols:
        raise ValueError(
            f"expected {rows * cols} blocks for shape {shape}, "
            f"got {blocks.shape[0]}"
        )
    frame = (
        blocks.reshape(rows, cols, block, block)
        .swapaxes(1, 2)
        .reshape(padded_h, padded_w)
    )
    return frame[:height, :width]
