"""A baseline-JPEG-style grayscale frame codec (the MJPEG payload).

Pipeline per 8x8 block: level shift, 2-D DCT, quality-scaled quantisation,
zig-zag scan, run-length coding, exp-Golomb entropy coding; DC
coefficients are differentially coded across blocks.  The format is not
bit-compatible with JFIF (no Huffman tables, no markers) but exercises the
same computational structure, produces realistic compression ratios, and —
what the experiments rely on — is fully deterministic in both directions.
"""

from __future__ import annotations

import struct
from typing import List, Tuple

import numpy as np

from repro.codec.bitstream import BitReader, BitWriter
from repro.codec.blocks import BLOCK, blocks_to_frame, frame_to_blocks
from repro.codec.dct import dct2, idct2
from repro.codec.entropy import (
    read_signed_exp_golomb,
    read_unsigned_exp_golomb,
    write_signed_exp_golomb,
    write_unsigned_exp_golomb,
)
from repro.codec.quant import dequantize, quality_scaled_table, quantize
from repro.codec.zigzag import (
    inverse_zigzag,
    run_length_decode,
    run_length_encode,
    zigzag,
)

_HEADER = struct.Struct(">HHB")


class JpegCodec:
    """Encoder/decoder for grayscale uint8 frames."""

    def __init__(self, quality: int = 75) -> None:
        self.quality = quality
        self.table = quality_scaled_table(quality)

    # -- encoding ------------------------------------------------------------

    def encode(self, frame: np.ndarray) -> bytes:
        """Encode a 2-D uint8 frame into a self-contained byte string."""
        if frame.dtype != np.uint8:
            raise ValueError("frame must be uint8")
        height, width = frame.shape
        blocks = frame_to_blocks(frame.astype(np.float64) - 128.0)
        coefficients = dct2(blocks)
        levels = quantize(coefficients, self.table)
        writer = BitWriter()
        previous_dc = 0
        for block in levels:
            scanned = zigzag(block).astype(np.int64)
            dc = int(scanned[0])
            write_signed_exp_golomb(writer, dc - previous_dc)
            previous_dc = dc
            for run, value in run_length_encode(scanned[1:]):
                write_unsigned_exp_golomb(writer, run)
                write_signed_exp_golomb(writer, value)
        return _HEADER.pack(height, width, self.quality) + writer.getvalue()

    # -- decoding --------------------------------------------------------------

    def decode(self, data: bytes) -> np.ndarray:
        """Decode a byte string back into a uint8 frame."""
        height, width, quality = _HEADER.unpack_from(data)
        table = quality_scaled_table(quality)
        reader = BitReader(data[_HEADER.size:])
        padded_h = height + ((-height) % BLOCK)
        padded_w = width + ((-width) % BLOCK)
        block_count = (padded_h // BLOCK) * (padded_w // BLOCK)
        blocks = np.zeros((block_count, BLOCK, BLOCK), dtype=np.float64)
        previous_dc = 0
        for index in range(block_count):
            dc = previous_dc + read_signed_exp_golomb(reader)
            previous_dc = dc
            pairs: List[Tuple[int, int]] = []
            while True:
                run = read_unsigned_exp_golomb(reader)
                value = read_signed_exp_golomb(reader)
                pairs.append((run, value))
                if run == 0 and value == 0:
                    break
            vector = np.concatenate(
                ([float(dc)], run_length_decode(pairs, BLOCK * BLOCK - 1))
            )
            levels = inverse_zigzag(vector)
            blocks[index] = idct2(dequantize(levels, table))
        frame = blocks_to_frame(blocks, (height, width)) + 128.0
        return np.clip(np.round(frame), 0, 255).astype(np.uint8)
