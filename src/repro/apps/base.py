"""Common shape of the three benchmark applications."""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.duplicate import NetworkBlueprint
from repro.rtc.pjd import PJD
from repro.rtc.sizing import SizingResult, size_duplicated_network


@dataclass(frozen=True)
class AppScale:
    """Experiment scale knobs.

    ``paper_scale=True`` uses the paper's geometry (320x240 frames, faults
    after ~18,000/20,000 tokens); the default is a scaled-down variant
    that exercises identical code paths in a fraction of the host time
    (substitution documented in DESIGN.md).
    """

    paper_scale: bool = False

    @property
    def frame_size(self) -> Tuple[int, int]:
        """(width, height) of video frames."""
        return (320, 240) if self.paper_scale else (96, 72)

    @property
    def warmup_tokens(self) -> int:
        """Tokens processed before fault injection."""
        return 18000 if self.paper_scale else 600


class StreamingApplication:
    """Base class: Table 1 models + blueprint construction.

    Subclasses define the class attributes below and implement
    :meth:`blueprint`.

    Attributes
    ----------
    name:
        Application name (used in reports).
    producer_model, consumer_model:
        PJD models of the input and output interface (Table 1).
    replica_input_models, replica_output_models:
        Per-replica consumption/production models; index 0 is replica
        ``R_1``, index 1 is ``R_2`` (the design-diversity variant).
    token_bytes_in, token_bytes_out:
        Nominal token sizes at the replicator and selector (drives the
        memory-overhead rows and the SCC latency model).
    app_code_bytes:
        Modelled application code footprint (denominator of the paper's
        memory-overhead percentages).
    """

    name: str = "app"
    #: True on copies produced by :meth:`minimized` — lets a run
    #: description (:mod:`repro.exec.taskspec`) reconstruct the app.
    is_minimized: bool = False
    producer_model: PJD
    consumer_model: PJD
    replica_input_models: List[PJD]
    replica_output_models: List[PJD]
    token_bytes_in: int = 0
    token_bytes_out: int = 0
    app_code_bytes: int = 1

    def __init__(self, scale: AppScale = AppScale(), seed: int = 0) -> None:
        self.scale = scale
        self.seed = seed

    # -- analysis ------------------------------------------------------------

    def sizing(self, horizon: Optional[float] = None,
               context=None) -> SizingResult:
        """Run the Section 3.4 computation for this application.

        ``context`` (a :class:`~repro.rtc.sizing.SolverContext`) warm-starts
        the curve solvers across repeated sizings — batch spec builders
        share one context per sweep.  Results are identical either way.
        """
        return size_duplicated_network(
            self.producer_model,
            self.replica_input_models,
            self.replica_output_models,
            self.consumer_model,
            horizon=horizon,
            context=context,
        )

    def minimized(self) -> "StreamingApplication":
        """A jitter-minimised copy (the Table 3 comparison setup)."""
        clone = type(self)(scale=self.scale, seed=self.seed)
        clone.producer_model = self.producer_model.minimized()
        clone.consumer_model = self.consumer_model.minimized()
        clone.replica_input_models = [
            m.minimized() for m in self.replica_input_models
        ]
        clone.replica_output_models = [
            m.minimized() for m in self.replica_output_models
        ]
        clone.is_minimized = True
        return clone

    @property
    def period_ms(self) -> float:
        """Application period (the consumer's)."""
        return self.consumer_model.period

    # -- construction ----------------------------------------------------------

    def blueprint(self, token_count: int, consumer_tokens: int,
                  seed: Optional[int] = None) -> NetworkBlueprint:
        """Build the blueprint for a run of ``token_count`` input tokens.

        ``consumer_tokens`` is the number of reads the consumer issues;
        experiments set it to ``token_count + priming`` so finite runs
        drain cleanly (see the experiment harness).
        """
        raise NotImplementedError

    def table1_row(self) -> dict:
        """The application's Table 1 parameters, rendered as a dict."""
        return {
            "application": self.name,
            "producer": str(self.producer_model),
            "replica1_in": str(self.replica_input_models[0]),
            "replica2_in": str(self.replica_input_models[1]),
            "replica1_out": str(self.replica_output_models[0]),
            "replica2_out": str(self.replica_output_models[1]),
            "consumer": str(self.consumer_model),
        }
