"""A configurable synthetic application.

Useful for studying the framework in isolation from codec behaviour: the
critical subnetwork is a single paced relay, and every interface model is
a constructor parameter.  The ablation benchmarks use a *bursty* variant
(producer jitter larger than the period) to exhibit the false-positive
regime that the paper's Eq. 3/Eq. 5 sizing provably avoids — the three
media applications generate traces well inside their envelopes, so
under-sizing must be provoked with burstier inputs.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.apps.base import AppScale, StreamingApplication
from repro.core.duplicate import NetworkBlueprint
from repro.kpn.network import Network
from repro.kpn.process import PacedRelay, PeriodicConsumer, PeriodicSource
from repro.rtc.pjd import PJD


class SyntheticApp(StreamingApplication):
    """A minimal Figure 1 application with configurable timing models."""

    name = "synthetic"
    token_bytes_in = 1024
    token_bytes_out = 1024
    app_code_bytes = 64 * 1024

    def __init__(
        self,
        producer: PJD = PJD(10.0, 1.0, 10.0),
        replicas: Optional[Sequence[PJD]] = None,
        consumer: Optional[PJD] = None,
        scale: AppScale = AppScale(),
        seed: int = 0,
        name: str = "synthetic",
    ) -> None:
        super().__init__(scale, seed)
        self.name = name
        self.producer_model = producer
        models = list(
            replicas
            if replicas is not None
            else [producer.with_jitter(2.0), producer.with_jitter(8.0)]
        )
        if len(models) != 2:
            raise ValueError("exactly two replica models required")
        self.replica_input_models = models
        self.replica_output_models = list(models)
        self.consumer_model = consumer if consumer is not None else producer

    @classmethod
    def randomized(cls, rng, seed: int = 0,
                   name: str = "synthetic-rand") -> "SyntheticApp":
        """Sample a random Figure 1 application from an explicit RNG.

        ``rng`` is a :class:`random.Random` supplied by the caller — this
        method performs no global-state draws, so a campaign generating
        apps from per-scenario derived streams (see
        :func:`repro.faults.sampling.derive_rng`) is order-independent.
        All interfaces share one period (a relay pipeline needs equal
        long-run rates for the Eq. 3 backlog to stay finite); jitters and
        minimum distances vary per interface, covering smooth, jittery
        and bursty regimes.
        """
        period = round(rng.uniform(4.0, 16.0), 2)

        def model(max_jitter_factor: float) -> PJD:
            jitter = round(rng.uniform(0.0, max_jitter_factor) * period, 2)
            if jitter > 0.8 * period:
                # Bursty regime: a tighter minimum distance keeps the
                # upper curve's burst limit meaningful.
                distance = round(rng.uniform(0.25, 0.6) * period, 2)
            else:
                distance = round(rng.uniform(0.5, 1.0) * period, 2)
            return PJD(period, jitter, distance)

        producer = model(1.2)
        replicas = [model(1.5), model(1.5)]
        consumer = model(0.5)
        return cls(producer=producer, replicas=replicas, consumer=consumer,
                   seed=seed, name=name)

    @classmethod
    def bursty(cls, period: float = 10.0, burst: int = 4,
               seed: int = 0) -> "SyntheticApp":
        """A bursty variant: the producer may emit ``burst`` tokens
        nearly back-to-back (jitter spanning ``burst`` periods, small
        minimum distance), and replica 2's legal jitter exceeds two
        periods — the regime where under-sized thresholds/capacities
        false-positive while the Eq. 3/Eq. 5 values provably do not."""
        min_distance = period / burst
        producer = PJD(period, (burst - 1) * period, min_distance)
        replicas = [
            PJD(period, 1.0, period),
            PJD(period, 2.4 * period, period / 2),
        ]
        consumer = PJD(period, 1.0, period)
        return cls(producer=producer, replicas=replicas, consumer=consumer,
                   seed=seed, name="synthetic-bursty")

    def blueprint(self, token_count: int, consumer_tokens: int,
                  seed: Optional[int] = None) -> NetworkBlueprint:
        seed = self.seed if seed is None else seed

        def make_producer(net: Network):
            return net.add_process(
                PeriodicSource(
                    "P",
                    self.producer_model,
                    token_count,
                    payload=lambda i: (i * 2654435761 % 2**16,
                                       self.token_bytes_in),
                    seed=seed * 100 + 1,
                )
            )

        def make_consumer(net: Network):
            return net.add_process(
                PeriodicConsumer("C", self.consumer_model, consumer_tokens,
                                 seed=seed * 100 + 2)
            )

        def make_critical(net: Network, prefix: str, variant: int,
                          input_ep, output_ep) -> List:
            relay = net.add_process(
                PacedRelay(
                    f"{prefix}/stage",
                    self.replica_output_models[variant],
                    seed=seed * 100 + 10 + variant,
                )
            )
            relay.input = input_ep
            relay.output = output_ep
            return [relay]

        return NetworkBlueprint(
            name=self.name,
            make_producer=make_producer,
            make_critical=make_critical,
            make_consumer=make_consumer,
        )
