"""The fault-tolerant MJPEG decoder (Figure 2, top; Tables 1 and 2).

Topology of one critical-subnetwork copy::

    replicator -> splitstream -> decode[0..S-1] -> mergeframe -> selector

The producer is a camera source emitting one *encoded* frame (~30 fps,
``<30, 2, 30>`` ms) as a tuple of independently coded stripes; each
``decode`` process decodes one stripe (a real JPEG-style decode); the
``mergeframe`` process stacks the stripes into the decoded frame and
releases it on the replica's production model (``<30, 5, 30>`` for
``R_1``, ``<30, 30, 30>`` for ``R_2`` — the design diversity of Table 1).
The consumer is a display draining decoded frames at ``<30, 2, 30>``.

Token sizes follow the paper: one encoded frame ~10 KB at the replicator,
one decoded 320x240 frame (76.8 KB) at the selector (scaled down with the
frame geometry unless ``paper_scale`` is set).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apps.base import AppScale, StreamingApplication
from repro.apps.processes import MergeFrame, SplitStream
from repro.apps.sources import SyntheticVideo
from repro.codec.jpeg import JpegCodec
from repro.core.duplicate import NetworkBlueprint
from repro.kpn.network import Network
from repro.kpn.process import FunctionProcess, PeriodicConsumer, PeriodicSource
from repro.rtc.pjd import PJD

#: Number of parallel stripe decoders per replica.
STRIPES = 3


class MjpegDecoderApp(StreamingApplication):
    """The MJPEG decoder application."""

    name = "mjpeg"
    producer_model = PJD(30.0, 2.0, 30.0)
    consumer_model = PJD(30.0, 2.0, 30.0)
    replica_input_models = [PJD(30.0, 5.0, 30.0), PJD(30.0, 30.0, 30.0)]
    replica_output_models = [PJD(30.0, 5.0, 30.0), PJD(30.0, 30.0, 30.0)]
    token_bytes_in = 10 * 1024
    token_bytes_out = 76800
    app_code_bytes = 300 * 1024  # calibrated to the paper's 0.7 % / 0.5 %

    def __init__(self, scale: AppScale = AppScale(), seed: int = 0,
                 quality: int = 75) -> None:
        super().__init__(scale, seed)
        self.quality = quality
        width, height = scale.frame_size
        self.width = width
        self.height = height
        if scale.paper_scale:
            self.token_bytes_out = width * height
        # Memoised per-token codec results: the media and both codecs are
        # deterministic, so every replica (and the reference network, and
        # every repeated run with the same content seed) transports
        # identical payloads — compute each exactly once.
        self._stripe_cache = {}
        self._decode_cache = {}

    # -- media pipeline helpers ------------------------------------------------

    def _encode_stripes(self, frame: np.ndarray, codec: JpegCodec) -> tuple:
        """Encode a frame as independently decodable horizontal stripes."""
        rows = np.array_split(frame, STRIPES, axis=0)
        return tuple(codec.encode(stripe) for stripe in rows)

    @staticmethod
    def _combine_stripes(parts) -> np.ndarray:
        return np.vstack(parts)

    # -- blueprint ------------------------------------------------------------

    def blueprint(self, token_count: int, consumer_tokens: int,
                  seed: Optional[int] = None) -> NetworkBlueprint:
        seed = self.seed if seed is None else seed
        video = SyntheticVideo(self.width, self.height, seed=self.seed)
        encoder = JpegCodec(self.quality)
        decoder = JpegCodec(self.quality)

        def payload(i: int):
            key = (self.seed, i)
            if key not in self._stripe_cache:
                self._stripe_cache[key] = self._encode_stripes(
                    video.frame(i), encoder
                )
            stripes = self._stripe_cache[key]
            return stripes, sum(len(s) for s in stripes)

        def cached_decode(data: bytes) -> np.ndarray:
            if data not in self._decode_cache:
                self._decode_cache[data] = decoder.decode(data)
            return self._decode_cache[data]

        def make_producer(net: Network):
            return net.add_process(
                PeriodicSource(
                    "camera",
                    self.producer_model,
                    token_count,
                    payload=payload,
                    seed=seed * 1000 + 1,
                )
            )

        def make_consumer(net: Network):
            return net.add_process(
                PeriodicConsumer(
                    "display",
                    self.consumer_model,
                    consumer_tokens,
                    seed=seed * 1000 + 2,
                )
            )

        def make_critical(net: Network, prefix: str, variant: int,
                          input_ep, output_ep) -> List:
            split = net.add_process(
                SplitStream(
                    f"{prefix}/splitstream",
                    fanout=STRIPES,
                    service_ms=0.4,
                    part_size=len,
                )
            )
            split.input = input_ep
            merge = net.add_process(
                MergeFrame(
                    f"{prefix}/mergeframe",
                    fanin=STRIPES,
                    combine=self._combine_stripes,
                    timing=self.replica_output_models[variant],
                    seed=seed * 1000 + 100 + variant,
                    out_size=lambda frame: frame.nbytes,
                    service_ms=0.3,
                )
            )
            merge.output = output_ep
            processes = [split, merge]
            for s in range(STRIPES):
                worker = net.add_process(
                    FunctionProcess(
                        f"{prefix}/decode{s}",
                        transform=cached_decode,
                        service=lambda token, rng: 3.0 + rng.uniform(0.0, 2.0),
                        seed=seed * 1000 + 200 + variant * 10 + s,
                        out_size=lambda stripe: stripe.nbytes,
                    )
                )
                fifo_in = net.add_fifo(f"{prefix}/split_to_dec{s}", capacity=2)
                fifo_out = net.add_fifo(f"{prefix}/dec{s}_to_merge", capacity=2)
                split.outputs[s] = fifo_in.writer
                worker.input = fifo_in.reader
                worker.output = fifo_out.writer
                merge.inputs[s] = fifo_out.reader
                processes.append(worker)
            return processes

        def make_priming(i: int):
            blank = np.zeros((self.height, self.width), dtype=np.uint8)
            return blank, blank.nbytes

        return NetworkBlueprint(
            name=self.name,
            make_producer=make_producer,
            make_critical=make_critical,
            make_consumer=make_consumer,
            make_priming=make_priming,
        )
