"""Application-specific process shapes (Figure 2 topologies).

The MJPEG decoder's ``splitstream`` and ``mergeframe`` processes are
fan-out / fan-in stages; the generic shapes in :mod:`repro.kpn.process`
are single-input single-output, so the two multi-port shapes live here.
"""

from __future__ import annotations

import math
from typing import Any, Callable, List, Optional, Sequence

import numpy as np

from repro.kpn.channel import ReadEndpoint, WriteEndpoint
from repro.kpn.errors import ProtocolError
from repro.kpn.operations import Delay, Read, Write
from repro.kpn.process import Process
from repro.kpn.tokens import Token
from repro.rtc.pjd import PJD


class SplitStream(Process):
    """Fan a composite token out to parallel workers.

    Two splitting modes, chosen at construction:

    * **element mode** (default) — the incoming token's value must be a
      sequence with one element per output; element ``i`` goes to output
      ``i``.  Models the MJPEG ``splitstream`` process over pre-striped
      payloads.
    * **zero-copy mode** (``zero_copy=True``) — the incoming token's
      value is one contiguous byte buffer; output ``i`` receives a
      read-only ``memoryview`` sub-token (:meth:`Token.view`) over its
      byte range, so no payload bytes are copied at the fan-out.  Ranges
      come from ``boundaries(buffer)`` (``fanout + 1`` ascending offsets)
      or default to an even byte split with the remainder on the last
      stripe.
    """

    def __init__(
        self,
        name: str,
        fanout: int,
        service_ms: float = 0.0,
        part_size: Optional[Callable[[Any], int]] = None,
        zero_copy: bool = False,
        boundaries: Optional[Callable[[Any], Sequence[int]]] = None,
    ) -> None:
        super().__init__(name)
        self.fanout = fanout
        self.service_ms = service_ms
        self.part_size = part_size or (lambda part: 0)
        self.zero_copy = zero_copy
        self.boundaries = boundaries
        self.input: Optional[ReadEndpoint] = None
        self.outputs: List[Optional[WriteEndpoint]] = [None] * fanout
        self.processed = 0

    def _offsets(self, buffer) -> Sequence[int]:
        if self.boundaries is not None:
            offsets = list(self.boundaries(buffer))
            if len(offsets) != self.fanout + 1:
                raise ProtocolError(
                    f"{self.name}: boundaries() returned {len(offsets)} "
                    f"offsets, expected {self.fanout + 1}"
                )
            return offsets
        nbytes = memoryview(buffer).nbytes
        stride = nbytes // self.fanout
        offsets = [i * stride for i in range(self.fanout)]
        offsets.append(nbytes)
        return offsets

    def behavior(self):
        if self.input is None or any(o is None for o in self.outputs):
            raise ProtocolError(f"{self.name}: endpoints not connected")
        while True:
            token = yield Read(self.input)
            if self.service_ms > 0:
                yield Delay(self.service_ms * self.slowdown)
            if self.zero_copy:
                offsets = self._offsets(token.value)
                for i in range(self.fanout):
                    # stamp per write — a blocked Write advances self.now,
                    # matching element mode's per-part stamping.
                    out = token.view(
                        offsets[i], offsets[i + 1], origin=self.name
                    ).stamped(self.now)
                    yield Write(self.outputs[i], out)
                self.processed += 1
                continue
            parts = token.value
            if len(parts) != self.fanout:
                raise ProtocolError(
                    f"{self.name}: token has {len(parts)} parts, "
                    f"expected {self.fanout}"
                )
            for i, part in enumerate(parts):
                out = Token(
                    value=part,
                    seqno=token.seqno,
                    stamp=self.now,
                    size_bytes=self.part_size(part),
                    origin=self.name,
                )
                yield Write(self.outputs[i], out)
            self.processed += 1


class MergeFrame(Process):
    """Join one token from every input, combine, and pace the output.

    Models the MJPEG ``mergeframe`` process: stripes from the parallel
    decoders are reassembled into one frame, and the frame is released on
    the replica's production PJD model (this is where the replicas'
    design-diversity jitter lives).  Rate-degradation faults stretch the
    pacing via ``self.slowdown``.
    """

    def __init__(
        self,
        name: str,
        fanin: int,
        combine: Callable[[Sequence[Any]], Any],
        timing: PJD,
        seed: int = 0,
        out_size: Optional[Callable[[Any], int]] = None,
        service_ms: float = 0.0,
    ) -> None:
        super().__init__(name)
        self.fanin = fanin
        self.combine = combine
        self.timing = timing
        self.seed = seed
        self.out_size = out_size or (lambda value: 0)
        self.service_ms = service_ms
        self.inputs: List[Optional[ReadEndpoint]] = [None] * fanin
        self.output: Optional[WriteEndpoint] = None
        self.release_times: List[float] = []

    def behavior(self):
        if any(i is None for i in self.inputs) or self.output is None:
            raise ProtocolError(f"{self.name}: endpoints not connected")
        rng = np.random.default_rng(self.seed)
        half_jitter = self.timing.jitter / 2.0
        nominal = 0.0
        previous = -math.inf
        while True:
            parts = []
            seqno = None
            for endpoint in self.inputs:
                token = yield Read(endpoint)
                if seqno is None:
                    seqno = token.seqno
                elif token.seqno != seqno:
                    raise ProtocolError(
                        f"{self.name}: stripe sequence mismatch "
                        f"({token.seqno} vs {seqno})"
                    )
                parts.append(token.value)
            if self.service_ms > 0:
                yield Delay(self.service_ms * self.slowdown)
            value = self.combine(parts)
            nominal += self.timing.period * self.slowdown
            target = nominal
            if half_jitter > 0:
                target += rng.uniform(-half_jitter, half_jitter)
            target = max(
                target,
                previous + self.timing.min_distance * self.slowdown,
                self.now,
            )
            wait = target - self.now
            if wait > 0:
                yield Delay(wait)
            previous = self.now
            out = Token(
                value=value,
                seqno=seqno,
                stamp=self.now,
                size_bytes=self.out_size(value),
                origin=self.name,
            )
            self.release_times.append(self.now)
            yield Write(self.output, out)
