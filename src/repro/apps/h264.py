"""The fault-tolerant H.264 encoder (the paper's third application).

Topology of one critical-subnetwork copy::

    replicator -> h264_encode -> pace -> selector

The producer is a camera emitting raw frames at ~30 fps; the encoder
process runs the full simplified H.264 pipeline (motion estimation,
transform, quantisation, entropy coding, closed-loop reconstruction) and
the paced exit releases each access unit on the replica's production
model.  The paper reports "similar results" for this application without
printing them; the reproduction regenerates the full Table 2/3 rows for it
(see EXPERIMENTS.md).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apps.base import AppScale, StreamingApplication
from repro.apps.sources import SyntheticVideo
from repro.codec.h264 import H264Encoder
from repro.core.duplicate import NetworkBlueprint
from repro.kpn.network import Network
from repro.kpn.process import (
    FunctionProcess,
    PacedRelay,
    PeriodicConsumer,
    PeriodicSource,
)
from repro.rtc.pjd import PJD


class H264EncoderApp(StreamingApplication):
    """The H.264 encoder application."""

    name = "h264"
    producer_model = PJD(33.3, 3.0, 33.3)
    consumer_model = PJD(33.3, 3.0, 33.3)
    replica_input_models = [PJD(33.3, 6.0, 33.3), PJD(33.3, 20.0, 33.3)]
    replica_output_models = [PJD(33.3, 6.0, 33.3), PJD(33.3, 20.0, 33.3)]
    token_bytes_in = 76800
    token_bytes_out = 12 * 1024
    app_code_bytes = 420 * 1024

    def __init__(self, scale: AppScale = AppScale(), seed: int = 0,
                 quality: int = 70, gop: int = 8) -> None:
        super().__init__(scale, seed)
        self.quality = quality
        self.gop = gop
        width, height = scale.frame_size
        self.width = width
        self.height = height
        self.token_bytes_in = width * height
        # Memoised bitstreams: the encoder is deterministic given the
        # frame sequence, so all replicas/networks/runs with the same
        # content seed produce the identical access units.  A master
        # encoder extends the list lazily, strictly in sequence.
        self._streams = {}

    def _bitstream(self, content_seed: int, index: int,
                   video: SyntheticVideo) -> bytes:
        """The access unit for frame ``index`` (memoised, sequential)."""
        if content_seed not in self._streams:
            self._streams[content_seed] = {
                "encoder": H264Encoder(
                    self.width, self.height,
                    quality=self.quality, gop=self.gop,
                ),
                "units": [],
            }
        stream = self._streams[content_seed]
        while len(stream["units"]) <= index:
            frame = video.frame(len(stream["units"]))
            stream["units"].append(stream["encoder"].encode_frame(frame))
        return stream["units"][index]

    def blueprint(self, token_count: int, consumer_tokens: int,
                  seed: Optional[int] = None) -> NetworkBlueprint:
        seed = self.seed if seed is None else seed
        video = SyntheticVideo(self.width, self.height, seed=self.seed)

        def payload(i: int):
            frame = video.frame(i)
            return frame, frame.nbytes

        def make_producer(net: Network):
            return net.add_process(
                PeriodicSource(
                    "camera",
                    self.producer_model,
                    token_count,
                    payload=payload,
                    seed=seed * 1000 + 1,
                )
            )

        def make_consumer(net: Network):
            return net.add_process(
                PeriodicConsumer(
                    "uplink",
                    self.consumer_model,
                    consumer_tokens,
                    seed=seed * 1000 + 2,
                )
            )

        def make_critical(net: Network, prefix: str, variant: int,
                          input_ep, output_ep) -> List:
            # Conceptually each replica owns a private encoder whose GOP
            # state is part of the replica; determinacy guarantees both
            # replicas produce identical bitstreams for identical input,
            # which is why the memoised master stream is a valid stand-in.
            encode = net.add_process(
                FunctionProcess(
                    f"{prefix}/h264_encode",
                    transform=lambda frame, seqno: self._bitstream(
                        self.seed, seqno - 1, video
                    ),
                    service=lambda token, rng: 9.0 + rng.uniform(0.0, 4.0),
                    seed=seed * 1000 + 100 + variant,
                    out_size=len,
                    takes_seqno=True,
                )
            )
            pace = net.add_process(
                PacedRelay(
                    f"{prefix}/pace",
                    timing=self.replica_output_models[variant],
                    seed=seed * 1000 + 300 + variant,
                )
            )
            tail = net.add_fifo(f"{prefix}/enc_to_pace", capacity=2)
            encode.input = input_ep
            encode.output = tail.writer
            pace.input = tail.reader
            pace.output = output_ep
            return [encode, pace]

        def make_priming(i: int):
            return b"", 0

        return NetworkBlueprint(
            name=self.name,
            make_producer=make_producer,
            make_critical=make_critical,
            make_consumer=make_consumer,
            make_priming=make_priming,
        )
