"""The three streaming applications of the paper's evaluation (Section 4.2).

Each application is a :class:`~repro.apps.base.StreamingApplication`: it
carries its Table 1 interface models (PJD tuples for producer, replica
consumption/production and consumer), knows how to compute its sizing
(Section 3.4) and how to build the :class:`~repro.core.duplicate.
NetworkBlueprint` from which the reference and duplicated networks are
assembled.

* :class:`~repro.apps.mjpeg.MjpegDecoderApp` — split-stream / parallel
  decode / merge-frame over a real JPEG-style codec (Figure 2, top);
* :class:`~repro.apps.adpcm.AdpcmApp` — IMA ADPCM encoder + decoder over
  3 KB PCM sample blocks (Figure 2, bottom);
* :class:`~repro.apps.h264.H264EncoderApp` — the simplified H.264 encoder
  (results "similar", omitted from the paper for space).
"""

from repro.apps.base import AppScale, StreamingApplication
from repro.apps.sources import SyntheticAudio, SyntheticVideo
from repro.apps.mjpeg import MjpegDecoderApp
from repro.apps.adpcm import AdpcmApp
from repro.apps.h264 import H264EncoderApp
from repro.apps.synthetic import SyntheticApp

ALL_APPLICATIONS = (MjpegDecoderApp, AdpcmApp, H264EncoderApp)

__all__ = [
    "AppScale",
    "StreamingApplication",
    "SyntheticAudio",
    "SyntheticVideo",
    "MjpegDecoderApp",
    "AdpcmApp",
    "H264EncoderApp",
    "SyntheticApp",
    "ALL_APPLICATIONS",
]
