"""Deterministic synthetic media generators.

The paper feeds its applications real camera frames and audio samples; we
have neither, so the producers synthesise media deterministically from a
seed: video frames are a moving gradient plus band-limited texture (enough
detail that the codecs do real work, enough smoothness that motion
estimation finds matches), audio is a multi-tone sweep.  Substitution
documented in DESIGN.md Section 2.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np


@dataclass
class SyntheticVideo:
    """A deterministic frame sequence ``frame(t)``.

    ``width`` / ``height`` default to a scaled-down geometry for fast
    simulation; the paper's 320x240 is available via the experiment
    configuration's paper-scale flag.
    """

    width: int = 96
    height: int = 72
    seed: int = 0

    def __post_init__(self) -> None:
        rng = np.random.default_rng(self.seed)
        # A fixed texture layer so consecutive frames share content that
        # motion estimation can track.
        noise = rng.normal(0.0, 1.0, (self.height * 2, self.width * 2))
        kernel = np.ones((5, 5)) / 25.0
        # Cheap separable smoothing via cumulative sums.
        smoothed = noise
        for _ in range(2):
            smoothed = (
                np.cumsum(smoothed, axis=0) - np.pad(
                    np.cumsum(smoothed, axis=0), ((5, 0), (0, 0))
                )[:-5]
            ) / 5.0
            smoothed = (
                np.cumsum(smoothed, axis=1) - np.pad(
                    np.cumsum(smoothed, axis=1), ((0, 0), (5, 0))
                )[:, :-5]
            ) / 5.0
        self._texture = smoothed * 20.0
        del kernel

    def frame(self, index: int) -> np.ndarray:
        """The ``index``-th frame (uint8, ``height x width``)."""
        y, x = np.mgrid[0: self.height, 0: self.width]
        phase = index * 0.35
        base = (
            128.0
            + 55.0 * np.sin((x + 4.0 * index) / 11.0 + phase * 0.1)
            + 35.0 * np.cos((y - 2.0 * index) / 8.0)
        )
        # Scroll the texture by the frame index (pure translation: ideal
        # for the motion estimator, like a panning camera).
        dy = (2 * index) % self.height
        dx = (3 * index) % self.width
        texture = self._texture[dy: dy + self.height, dx: dx + self.width]
        return np.clip(base + texture, 0, 255).astype(np.uint8)


@dataclass
class SyntheticAudio:
    """A deterministic int16 PCM stream cut into fixed-size blocks."""

    samples_per_block: int = 1536  # 3 KB of int16 per block, as in the paper
    seed: int = 0

    def block(self, index: int) -> np.ndarray:
        """The ``index``-th PCM block (int16)."""
        rng = np.random.default_rng(self.seed + index)
        n = self.samples_per_block
        t = np.arange(index * n, (index + 1) * n, dtype=np.float64)
        signal = (
            6000.0 * np.sin(t * 0.031)
            + 3000.0 * np.sin(t * 0.0073 + index * 0.2)
            + 500.0 * rng.normal(0.0, 1.0, n)
        )
        return np.clip(signal, -32768, 32767).astype(np.int16)
