"""The fault-tolerant ADPCM application (Figure 2, bottom; Tables 1-2).

Topology of one critical-subnetwork copy::

    replicator -> adpcm_encode -> adpcm_decode -> pace -> selector

The producer supplies one 3 KB PCM sample block every ~6.3 ms (the rate
the paper tuned for the SCC); the encoder performs the 4:1 IMA ADPCM
compression, the decoder reverts it, and the paced exit stage releases the
reconstructed block on the replica's production model.  A token is one
3 KB sample block at both the replicator and the selector (Section 4.2).
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from repro.apps.base import AppScale, StreamingApplication
from repro.apps.sources import SyntheticAudio
from repro.codec.adpcm import AdpcmCodec
from repro.core.duplicate import NetworkBlueprint
from repro.kpn.network import Network
from repro.kpn.process import (
    FunctionProcess,
    PacedRelay,
    PeriodicConsumer,
    PeriodicSource,
)
from repro.rtc.pjd import PJD

#: int16 samples per 3 KB block.
SAMPLES_PER_BLOCK = 1536


class AdpcmApp(StreamingApplication):
    """The ADPCM encoder+decoder application."""

    name = "adpcm"
    producer_model = PJD(6.3, 0.5, 6.3)
    consumer_model = PJD(6.3, 0.5, 6.3)
    replica_input_models = [PJD(6.3, 1.5, 6.3), PJD(6.3, 6.3, 6.3)]
    replica_output_models = [PJD(6.3, 1.5, 6.3), PJD(6.3, 6.3, 6.3)]
    token_bytes_in = 3 * 1024
    token_bytes_out = 3 * 1024
    app_code_bytes = 35 * 1024  # calibrated to the paper's 6 % / 4.6 %

    def __init__(self, scale: AppScale = AppScale(), seed: int = 0) -> None:
        super().__init__(scale, seed)
        # Memoised per-token codec results (deterministic media + codec).
        self._enc_cache = {}
        self._dec_cache = {}

    def blueprint(self, token_count: int, consumer_tokens: int,
                  seed: Optional[int] = None) -> NetworkBlueprint:
        seed = self.seed if seed is None else seed
        audio = SyntheticAudio(SAMPLES_PER_BLOCK, seed=self.seed)
        codec = AdpcmCodec()

        def payload(i: int):
            block = audio.block(i)
            return block, block.nbytes

        def cached_encode(block: np.ndarray, seqno: int) -> bytes:
            key = (self.seed, seqno)
            if key not in self._enc_cache:
                self._enc_cache[key] = codec.encode_block(block)
            return self._enc_cache[key]

        def cached_decode(data: bytes, seqno: int) -> np.ndarray:
            key = (self.seed, seqno)
            if key not in self._dec_cache:
                self._dec_cache[key] = codec.decode_block(
                    data, SAMPLES_PER_BLOCK
                )
            return self._dec_cache[key]

        def make_producer(net: Network):
            return net.add_process(
                PeriodicSource(
                    "sampler",
                    self.producer_model,
                    token_count,
                    payload=payload,
                    seed=seed * 1000 + 1,
                )
            )

        def make_consumer(net: Network):
            return net.add_process(
                PeriodicConsumer(
                    "playback",
                    self.consumer_model,
                    consumer_tokens,
                    seed=seed * 1000 + 2,
                )
            )

        def make_critical(net: Network, prefix: str, variant: int,
                          input_ep, output_ep) -> List:
            encode = net.add_process(
                FunctionProcess(
                    f"{prefix}/adpcm_encode",
                    transform=cached_encode,
                    service=lambda token, rng: 0.8 + rng.uniform(0.0, 0.4),
                    seed=seed * 1000 + 100 + variant,
                    out_size=len,
                    takes_seqno=True,
                )
            )
            decode = net.add_process(
                FunctionProcess(
                    f"{prefix}/adpcm_decode",
                    transform=cached_decode,
                    service=lambda token, rng: 0.8 + rng.uniform(0.0, 0.4),
                    seed=seed * 1000 + 200 + variant,
                    out_size=lambda block: block.nbytes,
                    takes_seqno=True,
                )
            )
            pace = net.add_process(
                PacedRelay(
                    f"{prefix}/pace",
                    timing=self.replica_output_models[variant],
                    seed=seed * 1000 + 300 + variant,
                )
            )
            middle = net.add_fifo(f"{prefix}/enc_to_dec", capacity=2)
            tail = net.add_fifo(f"{prefix}/dec_to_pace", capacity=2)
            encode.input = input_ep
            encode.output = middle.writer
            decode.input = middle.reader
            decode.output = tail.writer
            pace.input = tail.reader
            pace.output = output_ep
            return [encode, decode, pace]

        def make_priming(i: int):
            silence = np.zeros(SAMPLES_PER_BLOCK, dtype=np.int16)
            return silence, silence.nbytes

        return NetworkBlueprint(
            name=self.name,
            make_producer=make_producer,
            make_critical=make_critical,
            make_consumer=make_consumer,
            make_priming=make_priming,
        )
