"""Process-network container: processes + channels + wiring validation.

A :class:`Network` is a convenience builder over the simulator: it owns the
processes and channels of one dataflow graph, validates the wiring (every
FIFO endpoint used by exactly one process), creates per-channel traces from
a shared :class:`~repro.kpn.trace.TraceRecorder`, and instantiates
everything into a :class:`~repro.kpn.simulator.Simulator`.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from repro.kpn.channel import Fifo
from repro.kpn.errors import ProtocolError
from repro.kpn.process import Process
from repro.kpn.simulator import Simulator
from repro.kpn.tokens import Token
from repro.kpn.trace import TraceRecorder


class Network:
    """A named collection of processes and channels forming one graph."""

    def __init__(
        self,
        name: str,
        recorder: Optional[TraceRecorder] = None,
        metrics=None,
    ) -> None:
        self.name = name
        self.recorder = recorder or TraceRecorder()
        #: Optional :class:`~repro.obs.metrics.MetricsRegistry` threaded
        #: into every FIFO built here and into the simulator at
        #: instantiation time.
        self.metrics = metrics
        self.processes: Dict[str, Process] = {}
        self.channels: Dict[str, object] = {}

    # -- construction -----------------------------------------------------

    def add_process(self, process: Process) -> Process:
        """Register a process; names must be unique within the network."""
        if process.name in self.processes:
            raise ProtocolError(f"duplicate process {process.name}")
        self.processes[process.name] = process
        return process

    def add_fifo(
        self,
        name: str,
        capacity: int,
        transfer_latency: Optional[Callable[[Token], float]] = None,
        initial_tokens: Tuple[Token, ...] = (),
    ) -> Fifo:
        """Create and register a plain bounded FIFO channel."""
        fifo = Fifo(
            name,
            capacity,
            transfer_latency=transfer_latency,
            trace=self.recorder.channel(name),
            initial_tokens=initial_tokens,
            metrics=self.metrics,
        )
        return self.add_channel(fifo)

    def add_channel(self, channel) -> object:
        """Register an externally constructed channel (e.g. a replicator or
        selector from :mod:`repro.core`)."""
        if channel.name in self.channels:
            raise ProtocolError(f"duplicate channel {channel.name}")
        self.channels[channel.name] = channel
        return channel

    # -- validation ----------------------------------------------------------

    def validate(self) -> None:
        """Check that every process has its endpoints connected.

        Processes expose optional ``input`` / ``output`` attributes (the
        standard shapes) — any left ``None`` is an error.  Application
        processes with custom endpoint attributes perform their own checks
        at behaviour start; this catches the common mistakes early.
        """
        for process in self.processes.values():
            for attr in ("input", "output"):
                if hasattr(process, attr) and getattr(process, attr) is None:
                    raise ProtocolError(
                        f"{self.name}: process {process.name} has "
                        f"unconnected endpoint '{attr}'"
                    )

    # -- structure -------------------------------------------------------------

    def partition_groups(self) -> list:
        """Independent subnetwork partitions of this graph.

        Returns process-name groups (see
        :func:`repro.kpn.partition.partition_names`): two processes
        share a group iff they are connected through a chain of shared
        channels.  A single-group result means the network is one
        connected component and partitioned execution degenerates to a
        single burst.
        """
        from repro.kpn.partition import partition_names

        return partition_names(list(self.processes.values()))

    # -- instantiation ---------------------------------------------------------

    def instantiate(
        self,
        sim: Optional[Simulator] = None,
        exec_mode: Optional[str] = None,
        partitioned: Optional[bool] = None,
        kernel: Optional[str] = None,
    ) -> Simulator:
        """Bind channels and register processes into a simulator.

        ``exec_mode`` / ``partitioned`` / ``kernel`` configure the
        freshly built simulator (ignored when an explicit ``sim`` is
        passed — the caller already configured it).
        """
        self.validate()
        if sim is None:
            kwargs = {}
            if exec_mode is not None:
                kwargs["exec_mode"] = exec_mode
            if partitioned is not None:
                kwargs["partitioned"] = partitioned
            if kernel is not None:
                kwargs["kernel"] = kernel
            sim = Simulator(metrics=self.metrics, **kwargs)
        for channel in self.channels.values():
            channel.bind(sim)
        for process in self.processes.values():
            sim.register(process)
        return sim

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
        exec_mode: Optional[str] = None,
        partitioned: Optional[bool] = None,
        kernel: Optional[str] = None,
    ):
        """Instantiate into a fresh simulator and run to quiescence."""
        sim = self.instantiate(
            exec_mode=exec_mode, partitioned=partitioned, kernel=kernel
        )
        stats = sim.run(until=until, max_events=max_events)
        return sim, stats

    def process(self, name: str) -> Process:
        """Look up a process by name."""
        return self.processes[name]

    def to_dot(self) -> str:
        """Render the network as a Graphviz digraph.

        Processes become boxes, channels become ellipses; edges are
        derived from the endpoint attributes the standard process shapes
        expose (``input``/``output``/``inputs``/``outputs``).  Handy for
        documentation and for debugging wiring mistakes visually.
        """
        lines = [f'digraph "{self.name}" {{', "  rankdir=LR;"]
        for name in self.processes:
            lines.append(f'  "{name}" [shape=box];')
        for name in self.channels:
            lines.append(f'  "{name}" [shape=ellipse, style=dashed];')

        def endpoint_edges(process):
            edges = []
            for attr, direction in (("input", "in"), ("output", "out")):
                endpoint = getattr(process, attr, None)
                if endpoint is not None:
                    edges.append((endpoint, direction))
            for attr, direction in (("inputs", "in"), ("outputs", "out")):
                endpoints = getattr(process, attr, None)
                if isinstance(endpoints, list):
                    edges.extend(
                        (e, direction) for e in endpoints if e is not None
                    )
            return edges

        for name, process in self.processes.items():
            for endpoint, direction in endpoint_edges(process):
                channel = endpoint.channel.name
                if direction == "in":
                    lines.append(f'  "{channel}" -> "{name}";')
                else:
                    lines.append(f'  "{name}" -> "{channel}";')
        lines.append("}")
        return "\n".join(lines)

    # -- reporting ----------------------------------------------------------

    def max_fills(self) -> Dict[str, int]:
        """Max observed fill per channel (Table 2 row)."""
        return self.recorder.max_fills()

    def __repr__(self) -> str:
        return (
            f"Network({self.name}, {len(self.processes)} processes, "
            f"{len(self.channels)} channels)"
        )
