"""Exception hierarchy of the KPN simulator."""

from __future__ import annotations


class KpnError(Exception):
    """Base class for all simulator errors."""


class SimulationError(KpnError):
    """An invariant of the simulation engine was violated."""


class TraceError(KpnError):
    """Channel trace bookkeeping went inconsistent (e.g. a read recorded
    against an empty queue), indicating mis-wired instrumentation."""


class ProtocolError(KpnError):
    """A process or channel broke the KPN protocol (e.g. a second reader
    attached to a single-reader FIFO, or an unknown operation yielded)."""


class DeadlockError(KpnError):
    """All live processes are blocked and no event is pending.

    Carries the blocked process names to aid debugging of mis-sized
    networks (a correctly sized reference network never deadlocks;
    Section 3.3 assumes such a design).
    """

    def __init__(self, blocked: list) -> None:
        names = ", ".join(sorted(blocked)) or "<none>"
        super().__init__(f"deadlock: blocked processes: {names}")
        self.blocked = list(blocked)
