"""Saving and loading token-event traces.

Calibration (Eq. 2) in a real deployment starts from traces captured on
the target; this module is the interchange layer: a
:class:`~repro.kpn.trace.TraceRecorder`'s events can be exported to JSON
(full fidelity: per-channel event lists) or to a plain timestamp file
(one float per line, the format ``python -m repro calibrate`` reads),
and loaded back for offline analysis.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

from repro.kpn.trace import ChannelTrace, EventRecord, TraceRecorder

FORMAT_VERSION = 1


def recorder_to_dict(recorder: TraceRecorder) -> Dict:
    """Serialise every channel's events into plain data."""
    return {
        "version": FORMAT_VERSION,
        "channels": {
            name: {
                "max_fill": recorder[name].max_fill,
                "events": [
                    {
                        "time": event.time,
                        "kind": event.kind,
                        "seqno": event.seqno,
                        "interface": event.interface,
                    }
                    for event in recorder[name].events
                ],
            }
            for name in recorder.names()
        },
    }


def save_recorder(recorder: TraceRecorder, path: str) -> None:
    """Write a recorder's traces to a JSON file."""
    with open(path, "w") as handle:
        json.dump(recorder_to_dict(recorder), handle)


def load_recorder(path: str) -> TraceRecorder:
    """Load traces saved by :func:`save_recorder`.

    The ``writes`` / ``reads`` / ``drops`` counters are not serialised
    (the format stores only the event lists) — they are re-derived here by
    counting event kinds, so a loaded recorder answers the same counter
    queries as the live one it was saved from.
    """
    with open(path) as handle:
        data = json.load(handle)
    if data.get("version") != FORMAT_VERSION:
        raise ValueError(
            f"{path}: unsupported trace file version "
            f"{data.get('version')!r} (this build reads version "
            f"{FORMAT_VERSION})"
        )
    recorder = TraceRecorder(record_events=True)
    for name, channel in data["channels"].items():
        trace = recorder.channel(name)
        trace.max_fill = channel["max_fill"]
        for event in channel["events"]:
            trace.events.append(
                EventRecord(
                    time=event["time"],
                    kind=event["kind"],
                    seqno=event["seqno"],
                    interface=event["interface"],
                )
            )
        for event in trace.events:
            if event.kind == "write":
                trace.writes += 1
            elif event.kind == "read":
                trace.reads += 1
            elif event.kind == "drop":
                trace.drops += 1
    return recorder


def save_timestamps(timestamps: List[float], path: str) -> None:
    """Write a plain one-timestamp-per-line file (``repro calibrate``
    input format)."""
    with open(path, "w") as handle:
        for value in timestamps:
            handle.write(f"{value!r}\n")


def load_timestamps(path: str) -> List[float]:
    """Read a plain timestamp file."""
    with open(path) as handle:
        return [float(line) for line in handle.read().split()
                if line.strip()]


def channel_timestamps(
    trace: ChannelTrace,
    kind: str = "write",
    interface: Optional[int] = None,
) -> List[float]:
    """Extract one event stream's timestamps from a channel trace."""
    return [
        event.time
        for event in trace.events
        if event.kind == kind
        and (interface is None or event.interface == interface)
    ]
