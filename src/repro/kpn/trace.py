"""Instrumentation: token event traces and fill statistics.

Two consumers of this data exist in the library:

* calibration (Eq. 2) needs the raw timestamps at which tokens crossed an
  interface (:func:`repro.rtc.calibration.empirical_curves` /
  :func:`~repro.rtc.calibration.fit_pjd`);
* the Table 2 rows "Max. Observed Fill" need the running maximum occupancy
  of every FIFO.

Recording full timestamp lists is optional (``record_events=False`` keeps
only counters and the fill maximum) so paper-scale runs stay light.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.kpn.errors import TraceError


@dataclass(slots=True)
class EventRecord:
    """One channel event: a write (production) or read (consumption)."""

    time: float
    kind: str  # "write" | "read" | "drop"
    seqno: int
    interface: int = 0


class ChannelTrace:
    """Per-channel occupancy and event bookkeeping.

    ``fill`` tracks the number of queued tokens; ``max_fill`` its running
    maximum — the quantity Table 2 compares against the theoretical
    capacity.  When ``record_events`` is set, full event lists are kept for
    curve calibration.

    Slotted: the engine updates these counters inline on every committed
    read and write, so slot access (vs ``__dict__`` lookups) is measurable
    at paper scale.
    """

    __slots__ = (
        "name", "record_events", "fill", "max_fill",
        "writes", "reads", "drops", "events",
    )

    def __init__(self, name: str, record_events: bool = False) -> None:
        self.name = name
        self.record_events = record_events
        self.fill = 0
        self.max_fill = 0
        self.writes = 0
        self.reads = 0
        self.drops = 0
        self.events: List[EventRecord] = []

    def on_write(self, time: float, seqno: int, interface: int = 0) -> None:
        """Record a token entering the queue."""
        self.fill += 1
        self.writes += 1
        if self.fill > self.max_fill:
            self.max_fill = self.fill
        if self.record_events:
            self.events.append(EventRecord(time, "write", seqno, interface))

    def on_read(self, time: float, seqno: int, interface: int = 0) -> None:
        """Record a token leaving the queue.

        A read against a zero-fill trace means the caller's accounting is
        broken (a read committed without its write being traced, or
        priming tokens not declared via :meth:`preset_fill`) — fail loudly
        instead of going negative and corrupting ``max_fill`` forever.
        """
        if self.fill <= 0:
            raise TraceError(
                f"channel {self.name!r}: read at t={time} (seqno {seqno}) "
                f"recorded against fill {self.fill}"
            )
        self.fill -= 1
        self.reads += 1
        if self.record_events:
            self.events.append(EventRecord(time, "read", seqno, interface))

    def on_drop(self, time: float, seqno: int, interface: int = 0) -> None:
        """Record a token discarded without being queued (selector rule 3)."""
        self.drops += 1
        if self.record_events:
            self.events.append(EventRecord(time, "drop", seqno, interface))

    def preset_fill(self, amount: int) -> None:
        """Account for initial (priming) tokens placed before time zero."""
        self.fill += amount
        if self.fill > self.max_fill:
            self.max_fill = self.fill

    def write_times(self, interface: Optional[int] = None) -> List[float]:
        """Timestamps of write events (optionally for one interface)."""
        return [
            e.time
            for e in self.events
            if e.kind == "write"
            and (interface is None or e.interface == interface)
        ]

    def read_times(self, interface: Optional[int] = None) -> List[float]:
        """Timestamps of read events (optionally for one interface)."""
        return [
            e.time
            for e in self.events
            if e.kind == "read"
            and (interface is None or e.interface == interface)
        ]


class TraceRecorder:
    """Registry of all channel traces in one simulation run."""

    def __init__(self, record_events: bool = False) -> None:
        self.record_events = record_events
        self._traces: Dict[str, ChannelTrace] = {}

    def channel(self, name: str) -> ChannelTrace:
        """Get (or create) the trace for a channel name."""
        if name not in self._traces:
            self._traces[name] = ChannelTrace(name, self.record_events)
        return self._traces[name]

    def max_fills(self) -> Dict[str, int]:
        """Mapping channel name -> max observed fill."""
        return {name: t.max_fill for name, t in self._traces.items()}

    def __contains__(self, name: str) -> bool:
        return name in self._traces

    def __getitem__(self, name: str) -> ChannelTrace:
        return self._traces[name]

    def names(self) -> List[str]:
        return sorted(self._traces)
