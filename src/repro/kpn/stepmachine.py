"""Generator-free, self-polling step machines for the standard shapes.

CPython resumes a generator by re-hydrating its suspended frame; at
engine scale (one resume per yielded operation, millions per campaign)
that frame traffic is the dominant simulator cost left after PR 6's
calendar queue.  This module compiles each standard process shape from
:mod:`repro.kpn.process` into an explicit *step machine*: a closure

    ``step(value, now) -> Operation | None``

that the engine calls exactly where it used to call ``generator.send``.
``value`` is the completed operation's result (a token for reads, else
``None``), ``now`` is the current virtual instant, and a ``None`` return
means the process finished (the ``StopIteration`` analogue).  State
lives in closure cells (``nonlocal``), which CPython loads as fast as
locals — unlike instance attributes, which would make a naive
object-based machine *slower* than the generator it replaces.

Self-polling contract
---------------------

The hand-written machines go one step further than transliterating the
generator: they poll their channels *internally* and complete
immediately-satisfiable reads and writes without returning to the
engine, eliminating one engine round-trip (step call + operation
dispatch) per non-blocking channel operation.  A machine only ever
returns

* ``Delay`` — virtual time must advance (only the engine can do that);
* a ``Read``/``Write`` whose poll did **not** commit — the engine
  re-polls it (failed polls are idempotent: ``empty``/``full``/``wait``
  mutate nothing) and parks or schedules the retry exactly as it does
  for generator processes;
* ``None`` — the process finished.

Because every committed channel operation still happens at the same
virtual instant, inside the same engine event, and triggers the same
``retry`` wake calls against the engine's shared sequence counter, the
observable event order — and therefore every trace — is byte-identical
to generator execution.  The golden-trace suite and the Hypothesis
equivalence properties pin this.

Every machine is otherwise a field-exact transliteration of the
corresponding generator body: the same floating-point expressions in
the same order, the same RNG draw sequence, the same error messages.

Processes without a hand-written machine (application shapes such as
``SplitStream``, baseline monitors, test processes) fall back to
:func:`generator_stepfn`, a thin adapter over their ``behavior()``
generator — stepped mode therefore runs *every* network, it is simply
fastest for the shapes that dominate event counts.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Optional, Tuple

import numpy as np

from repro.kpn.errors import ProtocolError
from repro.kpn.operations import Delay, Operation, Read, Write
from repro.kpn.process import (
    FunctionProcess,
    PacedRelay,
    PeriodicConsumer,
    PeriodicSource,
    Process,
    RecordingSink,
    cached_pjd_schedule,
)
from repro.kpn.tokens import Token

_tuple_new = tuple.__new__

#: ``step`` signature every machine (and the generator adapter) exposes.
StepFn = Callable[[Any, float], Optional[Operation]]


def generator_stepfn(process: Process) -> Tuple[StepFn, Any]:
    """Adapter: drive an arbitrary ``behavior()`` generator through the
    stepped engine contract.  Returns ``(step, generator)`` — the engine
    keeps the generator so :meth:`Simulator.kill` can close it."""
    generator = process.behavior()
    send = generator.send

    def step(value: Any, now: float) -> Optional[Operation]:
        try:
            return send(value)
        except StopIteration:
            return None

    return step, generator


# -- hand-written machines ---------------------------------------------------
#
# State encoding: a small nonlocal int.  0 = first step (build schedule,
# verify wiring — the work a generator does on its first ``send``);
# positive states name the engine return the machine is suspended at:
# _AFTER_DELAY — a Delay completed, _AFTER_WRITE — a blocked write was
# committed by the engine's wake re-poll, _AFTER_READ — a blocked read
# was committed (``value`` is the token).

_AFTER_DELAY = 1
_AFTER_WRITE = 2
_AFTER_READ = 3

#: Internal phases of the read→service→emit machines.
_PH_READ = 0
_PH_SERVICE = 1
_PH_EMIT = 2


def _source_stepfn(process: PeriodicSource) -> StepFn:
    state = 0
    index = 0
    schedule: Tuple[float, ...] = ()
    count = process.count
    before = 0.0
    payload = process.payload
    name = process.name
    release_append = process.release_times.append
    commit_append = process.commit_times.append
    delay_op = Delay(0.0)
    write_op: Optional[Write] = None
    poll: Any = None
    windex = 0

    def step(value: Any, now: float) -> Optional[Operation]:
        nonlocal state, index, schedule, before, write_op, poll, windex
        if state == _AFTER_WRITE:
            # The engine's wake re-poll committed the blocked write.
            commit_append(now)
            if now > before + 1e-12:
                process.blocked_writes += 1
            index += 1
            released = False
        elif state == _AFTER_DELAY:
            # The release delay completed — token ``index`` goes out now.
            released = True
        else:  # first step
            output = process.output
            if output is None:
                raise ProtocolError(
                    f"{name}: output endpoint not connected"
                )
            schedule = cached_pjd_schedule(
                process.timing, count, process.seed, process.start
            )
            write_op = Write(output, None)
            poll = write_op.poll
            windex = write_op.index
            released = False
        while True:
            if not released:
                if index >= count:
                    return None
                wait = schedule[index] - now
                if wait > 0:
                    state = _AFTER_DELAY
                    delay_op.duration = wait
                    return delay_op
            released = False
            if payload is not None:
                payload_value, size = payload(index)
            else:
                payload_value = index
                size = 0
            token = _tuple_new(
                Token, (payload_value, index + 1, now, size, name)
            )
            release_append(now)
            before = now
            status, _ = poll(windex, token, now)
            if status == "ok":
                # Committed at the release instant: ``now == before``,
                # so the generator's blocked-write test is skipped too.
                commit_append(now)
                index += 1
                continue
            write_op.token = token
            state = _AFTER_WRITE
            return write_op

    return step


def _consumer_stepfn(process: PeriodicConsumer) -> StepFn:
    state = 0
    index = 0
    schedule: Tuple[float, ...] = ()
    count = process.count
    attempt = 0.0
    keep = process.keep_values
    tie_epsilon = process.TIE_EPSILON
    arrival_append = process.arrival_times.append
    token_append = process.tokens.append
    delay_op = Delay(0.0)
    read_op: Optional[Read] = None
    poll: Any = None
    rindex = 0

    def step(value: Any, now: float) -> Optional[Operation]:
        nonlocal state, index, schedule, attempt, read_op, poll, rindex
        if state == _AFTER_READ:
            # The engine's wake re-poll committed the stalled read.
            if now > attempt + 1e-12:
                process.stalls += 1
                process.total_stall_time += now - attempt
            arrival_append(now)
            if keep:
                token_append(value)
            index += 1
            released = False
        elif state == _AFTER_DELAY:
            released = True
        else:  # first step
            if process.input is None:
                raise ProtocolError(
                    f"{process.name}: input endpoint not connected"
                )
            # Pre-shift the schedule by the tie epsilon: the generator
            # computes ``schedule[i] + TIE_EPSILON - now`` per read, and
            # ``(a + b) - c`` with ``a + b`` folded ahead of time is
            # the identical IEEE operation sequence, so waits — and
            # traces — are bit-exact.
            schedule = tuple(
                t + tie_epsilon
                for t in cached_pjd_schedule(
                    process.timing, count, process.seed, process.start
                )
            )
            read_op = Read(process.input)
            poll = read_op.poll
            rindex = read_op.index
            released = False
        while True:
            if not released:
                if index >= count:
                    return None
                wait = schedule[index] - now
                if wait > 0:
                    state = _AFTER_DELAY
                    delay_op.duration = wait
                    return delay_op
            released = False
            attempt = now
            status, payload = poll(rindex, now)
            if status == "ok":
                # Same-instant completion: the stall test is vacuous.
                arrival_append(now)
                if keep:
                    token_append(payload)
                index += 1
                continue
            read_op.retry_at = payload
            state = _AFTER_READ
            return read_op

    return step


def _function_stepfn(process: FunctionProcess) -> StepFn:
    state = 0
    rng: Optional[np.random.Generator] = None
    pending: Optional[Token] = None
    name = process.name
    transform = process.transform
    takes_seqno = process.takes_seqno
    out_size = process.out_size
    service_time = process._service_time
    delay_op = Delay(0.0)
    read_op: Optional[Read] = None
    write_op: Optional[Write] = None
    rpoll: Any = None
    rindex = 0
    wpoll: Any = None
    windex = 0

    def step(value: Any, now: float) -> Optional[Operation]:
        nonlocal state, rng, pending, read_op, write_op
        nonlocal rpoll, rindex, wpoll, windex
        if state == _AFTER_READ:
            token = value
            phase = _PH_SERVICE
        elif state == _AFTER_DELAY:
            token = pending
            pending = None
            phase = _PH_EMIT
        elif state == _AFTER_WRITE:
            process.processed += 1
            token = None
            phase = _PH_READ
        else:  # first step
            if process.input is None or process.output is None:
                raise ProtocolError(f"{name}: endpoints not connected")
            rng = np.random.default_rng(process.seed)
            read_op = Read(process.input)
            write_op = Write(process.output, None)
            rpoll = read_op.poll
            rindex = read_op.index
            wpoll = write_op.poll
            windex = write_op.index
            token = None
            phase = _PH_READ
        while True:
            if phase == _PH_READ:
                status, payload = rpoll(rindex, now)
                if status != "ok":
                    read_op.retry_at = payload
                    state = _AFTER_READ
                    return read_op
                token = payload
                phase = _PH_SERVICE
            if phase == _PH_SERVICE:
                duration = service_time(token, rng)
                if duration > 0:
                    state = _AFTER_DELAY
                    pending = token
                    delay_op.duration = duration
                    return delay_op
                phase = _PH_EMIT
            seqno = token[1]
            if takes_seqno:
                out_value = transform(token[0], seqno)
            else:
                out_value = transform(token[0])
            size = out_size(out_value) if out_size is not None else token[3]
            out_token = _tuple_new(
                Token, (out_value, seqno, now, size, name)
            )
            status, _ = wpoll(windex, out_token, now)
            if status != "ok":
                write_op.token = out_token
                state = _AFTER_WRITE
                return write_op
            process.processed += 1
            phase = _PH_READ

    return step


def _paced_relay_stepfn(process: PacedRelay) -> StepFn:
    state = 0
    rng: Optional[np.random.Generator] = None
    pending: Optional[Token] = None
    half_jitter = 0.0
    nominal = process.start
    previous = -math.inf
    name = process.name
    transform = process.transform
    out_size = process.out_size
    release_append = process.release_times.append
    delay_op = Delay(0.0)
    read_op: Optional[Read] = None
    write_op: Optional[Write] = None
    rpoll: Any = None
    rindex = 0
    wpoll: Any = None
    windex = 0

    def step(value: Any, now: float) -> Optional[Operation]:
        nonlocal state, rng, pending, nominal, previous, half_jitter
        nonlocal read_op, write_op, rpoll, rindex, wpoll, windex
        if state == _AFTER_READ:
            token = value
            phase = _PH_SERVICE
        elif state == _AFTER_DELAY:
            token = pending
            pending = None
            phase = _PH_EMIT
        elif state == _AFTER_WRITE:
            token = None
            phase = _PH_READ
        else:  # first step
            if process.input is None or process.output is None:
                raise ProtocolError(f"{name}: endpoints not connected")
            rng = np.random.default_rng(process.seed)
            half_jitter = process.timing.jitter / 2.0
            read_op = Read(process.input)
            write_op = Write(process.output, None)
            rpoll = read_op.poll
            rindex = read_op.index
            wpoll = write_op.poll
            windex = write_op.index
            token = None
            phase = _PH_READ
        while True:
            if phase == _PH_READ:
                status, payload = rpoll(rindex, now)
                if status != "ok":
                    read_op.retry_at = payload
                    state = _AFTER_READ
                    return read_op
                token = payload
                phase = _PH_SERVICE
            if phase == _PH_SERVICE:
                # ``slowdown`` and the timing model are read live, per
                # token, exactly like the generator — fault injection
                # mutates them mid-run.
                nominal += process.timing.period * process.slowdown
                target = nominal
                if half_jitter > 0:
                    target += rng.uniform(-half_jitter, half_jitter)
                target = max(
                    target,
                    previous + process.timing.min_distance
                    * process.slowdown,
                    now,
                )
                wait = target - now
                if wait > 0:
                    state = _AFTER_DELAY
                    pending = token
                    delay_op.duration = wait
                    return delay_op
                phase = _PH_EMIT
            previous = now
            out_value = (
                transform(token[0]) if transform is not None else token[0]
            )
            size = out_size(out_value) if out_size is not None else token[3]
            out_token = _tuple_new(
                Token, (out_value, token[1], now, size, name)
            )
            release_append(now)
            status, _ = wpoll(windex, out_token, now)
            if status != "ok":
                write_op.token = out_token
                state = _AFTER_WRITE
                return write_op
            phase = _PH_READ

    return step


def _sink_stepfn(process: RecordingSink) -> StepFn:
    state = 0
    records = process.records
    read_op: Optional[Read] = None
    poll: Any = None
    rindex = 0

    def step(value: Any, now: float) -> Optional[Operation]:
        nonlocal state, read_op, poll, rindex
        if state == _AFTER_READ:
            records.append((now, value))
        else:  # first step
            if process.input is None:
                raise ProtocolError(
                    f"{process.name}: input endpoint not connected"
                )
            read_op = Read(process.input)
            poll = read_op.poll
            rindex = read_op.index
            state = _AFTER_READ
        while True:
            # ``limit`` is read live, like the generator's loop condition.
            limit = process.limit
            if limit is not None and len(records) >= limit:
                return None
            status, payload = poll(rindex, now)
            if status != "ok":
                read_op.retry_at = payload
                return read_op
            records.append((now, payload))

    return step


#: Exact-type dispatch: a subclass may override ``behavior`` with
#: different semantics, so only the shapes themselves compile.
_COMPILERS = {
    PeriodicSource: _source_stepfn,
    PeriodicConsumer: _consumer_stepfn,
    FunctionProcess: _function_stepfn,
    PacedRelay: _paced_relay_stepfn,
    RecordingSink: _sink_stepfn,
}


def compile_stepfn(process: Any) -> Tuple[StepFn, Any]:
    """Build the step function for ``process``.

    Returns ``(step, generator_or_None)``: a hand-written machine (and
    ``None``) for the standard shapes, else the generator adapter (and
    the live generator, kept for :meth:`Simulator.kill`).  An instance
    with a ``behavior`` attribute of its own always takes the generator
    path — whatever it yields is authoritative.
    """
    compiler = _COMPILERS.get(type(process))
    if compiler is not None and "behavior" not in process.__dict__:
        return compiler(process), None
    return generator_stepfn(process)
