"""The discrete-event engine.

Virtual time is a float (milliseconds by convention throughout the
library).  Events are totally ordered by ``(time, sequence_number)`` so two
runs of the same seeded network produce byte-identical traces — the
determinism policy of DESIGN.md Section 6.

Processes are generators driven by the engine: each yielded
:class:`~repro.kpn.operations.Operation` either completes immediately, is
scheduled for a later virtual instant (``Delay``, transfer latency), or
parks the process on a channel until a counterparty unblocks it.  This
reproduces the blocking FIFO semantics of Section 2 of the paper without
any OS threads, making fault injection (killing a replica at an exact
virtual instant) trivial and exact.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from enum import Enum
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple

from repro.kpn.errors import ProtocolError, SimulationError
from repro.kpn.operations import Delay, Halt, Operation, Read, Write


class ProcessState(Enum):
    """Lifecycle states of a process inside the engine."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED_READ = "blocked_read"
    BLOCKED_WRITE = "blocked_write"
    DELAYED = "delayed"
    DONE = "done"
    KILLED = "killed"


class ProcessHandle:
    """Engine-side wrapper around one process generator."""

    def __init__(self, name: str, generator, owner: Any = None) -> None:
        self.name = name
        self.generator = generator
        self.owner = owner
        self.state = ProcessState.READY
        self.pending_op: Optional[Operation] = None
        self.wake_scheduled = False

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.DONE, ProcessState.KILLED)

    @property
    def blocked(self) -> bool:
        return self.state in (
            ProcessState.BLOCKED_READ,
            ProcessState.BLOCKED_WRITE,
        )

    def __repr__(self) -> str:
        return f"ProcessHandle({self.name}, {self.state.value})"


@dataclass
class RunStats:
    """Summary of one :meth:`Simulator.run` call."""

    events: int = 0
    end_time: float = 0.0
    halted_on_limit: bool = False
    blocked_processes: List[str] = field(default_factory=list)


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.register(process)           # a repro.kpn.process.Process
        channel.bind(sim)               # channels learn how to wake parties
        stats = sim.run(until=10_000.0)
    """

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, Callable[[], None]]] = []
        self._sequence = 0
        self._now = 0.0
        self._handles: Dict[str, ProcessHandle] = {}
        self._started = False
        self._event_count = 0

    # -- time and scheduling ----------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (ms)."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total number of events processed so far."""
        return self._event_count

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at an absolute virtual instant."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        self._sequence += 1
        heapq.heappush(self._heap, (max(time, self._now), self._sequence, action))

    # -- process management -------------------------------------------------

    def register(self, process: Any) -> ProcessHandle:
        """Register a process (anything with ``name`` and ``behavior()``).

        The process starts at time 0 (or at registration time if the run
        has already started).
        """
        name = process.name
        if name in self._handles:
            raise ProtocolError(f"duplicate process name: {name}")
        handle = ProcessHandle(name, process.behavior(), owner=process)
        self._handles[name] = handle
        if hasattr(process, "attach"):
            process.attach(self, handle)
        self.schedule(0.0, lambda: self._start(handle))
        return handle

    def register_all(self, processes: Iterable[Any]) -> List[ProcessHandle]:
        """Register a collection of processes."""
        return [self.register(p) for p in processes]

    def handle(self, name: str) -> ProcessHandle:
        """Look up a process handle by name."""
        return self._handles[name]

    def kill(self, name: str) -> None:
        """Mark a process killed (fault injection).

        A killed process never runs again: pending events targeting it are
        dropped at fire time, and parked channel entries ignore it.
        """
        handle = self._handles[name]
        if handle.state is ProcessState.DONE:
            return
        handle.state = ProcessState.KILLED
        handle.generator.close()

    def blocked_processes(self) -> List[str]:
        """Names of live processes currently parked on a channel."""
        return [h.name for h in self._handles.values() if h.blocked]

    def live_processes(self) -> List[str]:
        """Names of processes that are not done/killed."""
        return [h.name for h in self._handles.values() if h.alive]

    # -- engine loop ---------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> RunStats:
        """Process events until the heap drains, ``until`` is passed, or
        ``max_events`` fire.  Returns a :class:`RunStats` summary.

        Running out of events with parked processes is *quiescence* (the
        normal end of a finite streaming run), not an error; callers that
        consider it a deadlock can inspect ``stats.blocked_processes``.
        """
        stats = RunStats()
        while self._heap:
            time, _seq, action = self._heap[0]
            if until is not None and time > until:
                break
            heapq.heappop(self._heap)
            self._now = time
            self._event_count += 1
            stats.events += 1
            action()
            if max_events is not None and stats.events >= max_events:
                stats.halted_on_limit = True
                break
        stats.end_time = self._now
        stats.blocked_processes = self.blocked_processes()
        return stats

    def step(self) -> bool:
        """Process a single event; returns False when none are pending."""
        if not self._heap:
            return False
        time, _seq, action = heapq.heappop(self._heap)
        self._now = time
        self._event_count += 1
        action()
        return True

    # -- process driving ------------------------------------------------------

    def _start(self, handle: ProcessHandle) -> None:
        if handle.state is ProcessState.KILLED:
            return
        self._advance(handle, None)

    def _advance(self, handle: ProcessHandle, value: Any) -> None:
        """Resume the generator with ``value`` and dispatch its next op."""
        if not handle.alive:
            return
        handle.state = ProcessState.RUNNING
        try:
            operation = handle.generator.send(value)
        except StopIteration:
            handle.state = ProcessState.DONE
            return
        self._dispatch(handle, operation)

    def _dispatch(self, handle: ProcessHandle, operation: Operation) -> None:
        if isinstance(operation, Delay):
            handle.state = ProcessState.DELAYED
            handle.pending_op = operation
            self.schedule(operation.duration,
                          lambda: self._advance(handle, None))
        elif isinstance(operation, Read):
            self._attempt_read(handle, operation)
        elif isinstance(operation, Write):
            self._attempt_write(handle, operation)
        elif isinstance(operation, Halt):
            handle.state = ProcessState.DONE
            handle.generator.close()
        else:
            raise ProtocolError(
                f"process {handle.name} yielded unknown operation "
                f"{operation!r}"
            )

    def _attempt_read(self, handle: ProcessHandle, operation: Read) -> None:
        if not handle.alive:
            return
        endpoint = operation.endpoint
        status, payload = endpoint.channel.poll_read(endpoint.index, self._now)
        if status == "ok":
            self._advance(handle, payload)
        elif status == "wait":
            handle.state = ProcessState.BLOCKED_READ
            handle.pending_op = operation
            self.schedule_at(payload,
                             lambda: self._attempt_read(handle, operation))
        elif status == "empty":
            handle.state = ProcessState.BLOCKED_READ
            handle.pending_op = operation
            endpoint.channel.park_reader(endpoint.index, handle)
        else:  # pragma: no cover - channel contract violation
            raise ProtocolError(f"bad poll_read status {status!r}")

    def _attempt_write(self, handle: ProcessHandle, operation: Write) -> None:
        if not handle.alive:
            return
        endpoint = operation.endpoint
        status, _ = endpoint.channel.poll_write(
            endpoint.index, operation.token, self._now
        )
        if status == "ok":
            self._advance(handle, None)
        elif status == "full":
            handle.state = ProcessState.BLOCKED_WRITE
            handle.pending_op = operation
            endpoint.channel.park_writer(endpoint.index, handle)
        else:  # pragma: no cover - channel contract violation
            raise ProtocolError(f"bad poll_write status {status!r}")

    def retry(self, handle: ProcessHandle) -> None:
        """Re-attempt a parked process's pending operation *now*.

        Channels call this when their state changes (a read freed space, a
        write added a token).  The retry is scheduled as a fresh event so
        the waker finishes its own event first.
        """
        if not handle.alive or handle.pending_op is None:
            return
        if handle.wake_scheduled:
            return
        handle.wake_scheduled = True
        operation = handle.pending_op

        def fire() -> None:
            handle.wake_scheduled = False
            if not handle.alive:
                return
            if isinstance(operation, Read):
                self._attempt_read(handle, operation)
            elif isinstance(operation, Write):
                self._attempt_write(handle, operation)

        self.schedule(0.0, fire)
