"""The discrete-event engine.

Virtual time is a float (milliseconds by convention throughout the
library).  Events are totally ordered by ``(time, sequence_number)`` so two
runs of the same seeded network produce byte-identical traces — the
determinism policy of DESIGN.md Section 7.

Processes are generators driven by the engine: each yielded
:class:`~repro.kpn.operations.Operation` either completes immediately, is
scheduled for a later virtual instant (``Delay``, transfer latency), or
parks the process on a channel until a counterparty unblocks it.  This
reproduces the blocking FIFO semantics of Section 2 of the paper without
any OS threads, making fault injection (killing a replica at an exact
virtual instant) trivial and exact.

Hot-path design
---------------

The engine avoids per-event closure allocation: every scheduled unit of
work is one of four ``__slots__``-based typed records (:class:`StartEvent`,
:class:`ResumeEvent`, :class:`RetryEvent`, :class:`CallbackEvent`)
dispatched through a small jump table keyed on the record class.

Channel wake-ups take a **direct-handoff fast path**: a counterparty freed
at the *current* virtual instant is queued on a same-time run queue (a
deque) instead of round-tripping through the event heap as a
``schedule(0.0, ...)`` event.  Run-queue entries carry sequence numbers
drawn from the same counter as heap events and the main loop always fires
the globally smallest ``(time, sequence)`` next, so the observable event
order — and therefore every trace — is identical to the heap-only engine.
The queue is bounded by construction: ``wake_scheduled`` admits at most
one pending wake per registered process.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from collections import deque
from enum import Enum
from time import perf_counter
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.kpn.errors import ProtocolError, SimulationError
from repro.kpn.operations import Delay, Halt, Operation, Read, Write
from repro.kpn.scheduler import CalendarQueue

_heappush = heapq.heappush


class ProcessState(Enum):
    """Lifecycle states of a process inside the engine."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED_READ = "blocked_read"
    BLOCKED_WRITE = "blocked_write"
    DELAYED = "delayed"
    DONE = "done"
    KILLED = "killed"


class ProcessHandle:
    """Engine-side wrapper around one process generator."""

    __slots__ = (
        "name",
        "generator",
        "owner",
        "state",
        "pending_op",
        "wake_scheduled",
        "is_parked",
        "block_start",
        "resume_event",
    )

    def __init__(self, name: str, generator, owner: Any = None) -> None:
        self.name = name
        self.generator = generator
        self.owner = owner
        self.state = ProcessState.READY
        self.pending_op: Optional[Operation] = None
        #: Reusable Delay-completion record.  A process can be inside at
        #: most one ``Delay`` at a time, so one record per handle replaces
        #: one allocation per delay — the most frequent event kind.
        self.resume_event = ResumeEvent(self)
        #: A wake (retry) for this handle is already queued; channels may
        #: wake a party several times in one instant, the engine coalesces.
        self.wake_scheduled = False
        #: The handle sits in some channel's parked deque.  A process
        #: blocks on exactly one operation at a time, so a single flag
        #: replaces the per-channel ``handle in parked`` membership scans.
        self.is_parked = False
        #: Virtual instant the current blocked span began (only maintained
        #: while engine metrics are enabled; feeds ``sim.block_ms``).
        self.block_start = 0.0

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.DONE, ProcessState.KILLED)

    @property
    def blocked(self) -> bool:
        return self.state in (
            ProcessState.BLOCKED_READ,
            ProcessState.BLOCKED_WRITE,
        )

    def __repr__(self) -> str:
        return f"ProcessHandle({self.name}, {self.state.value})"


class StartEvent:
    """First advancement of a freshly registered process."""

    __slots__ = ("handle",)

    def __init__(self, handle: ProcessHandle) -> None:
        self.handle = handle


class ResumeEvent:
    """Resume a delayed process (``Delay`` completion)."""

    __slots__ = ("handle",)

    def __init__(self, handle: ProcessHandle) -> None:
        self.handle = handle


class RetryEvent:
    """Re-attempt a blocked operation at a known future instant.

    Used for the channel ``("wait", t)`` status: a token is in flight and
    becomes readable at ``t``.  Same-instant wakes never build this record
    — they ride the direct-handoff run queue instead.
    """

    __slots__ = ("handle", "operation")

    def __init__(self, handle: ProcessHandle, operation: Operation) -> None:
        self.handle = handle
        self.operation = operation


class CallbackEvent:
    """An arbitrary callable — the public ``schedule`` API, fault
    injection hooks, and tests."""

    __slots__ = ("action",)

    def __init__(self, action: Callable[[], None]) -> None:
        self.action = action


@dataclass
class RunStats:
    """Summary of one :meth:`Simulator.run` call."""

    events: int = 0
    end_time: float = 0.0
    halted_on_limit: bool = False
    blocked_processes: List[str] = field(default_factory=list)
    #: Wall-clock duration of the run loop (seconds).
    wall_time_s: float = 0.0
    #: Events processed per wall-clock second — the in-band throughput
    #: signal perf PRs are measured against.
    events_per_sec: float = 0.0


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.register(process)           # a repro.kpn.process.Process
        channel.bind(sim)               # channels learn how to wake parties
        stats = sim.run(until=10_000.0)
    """

    def __init__(
        self,
        metrics: Any = None,
        scheduler: str = "calendar",
        calendar_threshold: int = 8,
    ) -> None:
        if scheduler not in ("calendar", "heap"):
            raise ValueError(
                f"scheduler must be 'calendar' or 'heap', got {scheduler!r}"
            )
        #: Scheduler policy.  ``"calendar"`` (default) engages an O(1)
        #: amortised :class:`~repro.kpn.scheduler.CalendarQueue` for the
        #: duration of a :meth:`run` whenever the pending-event population
        #: at run entry reaches ``calendar_threshold``; ``"heap"`` always
        #: uses the plain binary heap.  Event order (and thus every trace)
        #: is identical under both.
        self.scheduler = scheduler
        self.calendar_threshold = calendar_threshold
        #: The engaged CalendarQueue during a calendar-mode run, else None.
        #: Scheduling paths (`_push_event`, the Delay fast path) route
        #: into it when set.
        self._cal = None
        self._heap: List[Tuple[float, int, Any]] = []
        #: Direct-handoff run queue: ``(time, sequence, handle)`` wakes at
        #: the current instant, FIFO in sequence order.
        self._runq: Deque[Tuple[float, int, ProcessHandle]] = deque()
        self._sequence = 0
        self._now = 0.0
        self._handles: Dict[str, ProcessHandle] = {}
        self._event_count = 0
        #: Optional telemetry (see :mod:`repro.obs`).  Instruments are
        #: created eagerly here so the hot paths only test ``is not None``
        #: — a disabled (or absent) registry costs one pointer check per
        #: sample site and nothing per event.
        self._metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        if self._metrics is not None:
            self._m_events = self._metrics.counter("sim.events")
            self._m_heap_events = self._metrics.counter("sim.heap_events")
            self._m_runq_wakes = self._metrics.counter("sim.runq_wakes")
            self._m_parks = self._metrics.counter("sim.parks")
            self._m_wakes = self._metrics.counter("sim.wakes_requested")
            self._m_block = self._metrics.histogram("sim.block_ms")
        else:
            self._m_parks = None
            self._m_wakes = None
            self._m_block = None
        #: Optional transition hook ``f(time, process, kind, detail)``
        #: feeding a :class:`repro.obs.timeline.RunTimeline`.
        self._hook: Optional[Callable[[float, str, str, Any], None]] = None
        #: Combined "any per-transition observer active" flag: the hot
        #: paths test this single attribute and only then take the cold
        #: ``_note_*`` calls.
        self._observed = self._m_block is not None

    # -- observability ------------------------------------------------------

    def set_transition_hook(
        self, hook: Optional[Callable[[float, str, str, Any], None]]
    ) -> None:
        """Install (or clear) the process-transition observer.

        ``hook(time, process_name, kind, detail)`` fires on every process
        lifecycle edge: ``start``, ``compute`` (detail = delay ms),
        ``block_read`` / ``block_write`` (detail = channel name),
        ``resume``, ``done`` and ``killed``.  The hook must only record —
        mutating engine state from it is undefined behaviour.
        """
        self._hook = hook
        self._observed = hook is not None or self._m_block is not None

    # -- time and scheduling ----------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (ms)."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total number of events processed so far."""
        return self._event_count

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at an absolute virtual instant."""
        self._push_event(time, CallbackEvent(action))

    def _push_event(self, time: float, event: Any) -> None:
        """Push a typed event record onto the event queue at ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        self._sequence += 1
        entry = (max(time, self._now), self._sequence, event)
        cal = self._cal
        if cal is None:
            heapq.heappush(self._heap, entry)
        else:
            cal.push(entry)

    # -- process management -------------------------------------------------

    def register(self, process: Any) -> ProcessHandle:
        """Register a process (anything with ``name`` and ``behavior()``).

        The process starts at time 0 (or at registration time if the run
        has already started).
        """
        name = process.name
        if name in self._handles:
            raise ProtocolError(f"duplicate process name: {name}")
        handle = ProcessHandle(name, process.behavior(), owner=process)
        self._handles[name] = handle
        if hasattr(process, "attach"):
            process.attach(self, handle)
        self._push_event(self._now, StartEvent(handle))
        return handle

    def register_all(self, processes: Iterable[Any]) -> List[ProcessHandle]:
        """Register a collection of processes."""
        return [self.register(p) for p in processes]

    def handle(self, name: str) -> ProcessHandle:
        """Look up a process handle by name."""
        return self._handles[name]

    def kill(self, name: str) -> None:
        """Mark a process killed (fault injection).

        A killed process never runs again: pending events targeting it are
        dropped at fire time, and parked channel entries ignore it.
        """
        handle = self._handles[name]
        if handle.state is ProcessState.DONE:
            return
        handle.state = ProcessState.KILLED
        if self._hook is not None:
            self._hook(self._now, name, "killed", None)
        try:
            handle.generator.close()
        except (RuntimeError, ValueError):
            # The generator is currently executing — a process killing
            # itself, or a hook firing while the engine is mid-advance.
            # The KILLED state already guarantees it never advances
            # again; the suspended frame is reclaimed by the GC.
            pass

    def blocked_processes(self) -> List[str]:
        """Names of live processes currently parked on a channel."""
        return [h.name for h in self._handles.values() if h.blocked]

    def live_processes(self) -> List[str]:
        """Names of processes that are not done/killed."""
        return [h.name for h in self._handles.values() if h.alive]

    # -- engine loop ---------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> RunStats:
        """Process events until the queues drain, ``until`` is passed, or
        ``max_events`` fire.  Returns a :class:`RunStats` summary.

        Running out of events with parked processes is *quiescence* (the
        normal end of a finite streaming run), not an error; callers that
        consider it a deadlock can inspect ``stats.blocked_processes``.

        Scheduler engagement happens here: with ``scheduler="calendar"``
        and at least ``calendar_threshold`` pending events, the run is
        driven from a :class:`~repro.kpn.scheduler.CalendarQueue` (O(1)
        amortised scheduling); pending entries spill back to the plain
        heap on exit so ``step()``/inspection keep working.  Event order
        is identical either way.
        """
        stats = RunStats()
        time_limit = float("inf") if until is None else until
        event_limit = -1 if max_events is None else max_events
        started = perf_counter()
        if (
            self.scheduler == "calendar"
            and self._cal is None
            and len(self._heap) >= self.calendar_threshold
        ):
            self._cal = CalendarQueue(self._heap)
            self._heap = []
            try:
                events = self._drive_calendar(stats, time_limit, event_limit)
            finally:
                self._heap = self._cal.drain()
                heapq.heapify(self._heap)
                self._cal = None
        else:
            events = self._drive_heap(stats, time_limit, event_limit)
        stats.events = events
        stats.wall_time_s = perf_counter() - started
        if stats.wall_time_s > 0:
            stats.events_per_sec = stats.events / stats.wall_time_s
        stats.end_time = self._now
        stats.blocked_processes = self.blocked_processes()
        return stats

    def _drive_heap(
        self, stats: RunStats, time_limit: float, event_limit: int
    ) -> int:
        """The binary-heap run loop (small populations, ``scheduler="heap"``)."""
        heap = self._heap
        runq = self._runq
        jump = _JUMP_TABLE
        pop = heapq.heappop
        advance = self._advance
        reattempt = self._reattempt
        events = 0
        runq_fired = 0
        try:
            while heap or runq:
                # The next event is the globally smallest (time, sequence)
                # of the heap top and the run-queue front.  Run-queue
                # entries are pushed with monotonically increasing sequence
                # numbers at the then-current time, so the front is always
                # the queue minimum.
                if runq:
                    entry = runq[0]
                    if heap:
                        top = heap[0]
                        if top[0] < entry[0] or (
                            top[0] == entry[0] and top[1] < entry[1]
                        ):
                            entry = top
                            from_runq = False
                        else:
                            from_runq = True
                    else:
                        from_runq = True
                else:
                    entry = heap[0]
                    from_runq = False
                time = entry[0]
                if time > time_limit:
                    break
                self._now = time
                events += 1
                if from_runq:
                    # Direct-handoff wake, inlined from _fire_wake.
                    runq.popleft()
                    runq_fired += 1
                    handle = entry[2]
                    handle.wake_scheduled = False
                    operation = handle.pending_op
                    if operation is not None:
                        reattempt(handle, operation)
                else:
                    pop(heap)
                    event = entry[2]
                    cls = event.__class__
                    if cls is ResumeEvent:
                        # Fast path for the most frequent record (Delay
                        # completions); everything else takes the table.
                        advance(event.handle, None)
                    else:
                        jump[cls](self, event)
                if events == event_limit:
                    stats.halted_on_limit = True
                    break
        finally:
            self._event_count += events
            if self._metrics is not None:
                self._m_events.inc(events)
                self._m_runq_wakes.inc(runq_fired)
                self._m_heap_events.inc(events - runq_fired)
        return events

    def _drive_calendar(
        self, stats: RunStats, time_limit: float, event_limit: int
    ) -> int:
        """The calendar-queue run loop.

        Structurally identical to :meth:`_drive_heap` with the heap's
        ``[0]``/``heappop`` replaced by the calendar's ``peek``/``pop``;
        both pop the globally smallest ``(time, sequence)`` so the event
        order — and every trace — is byte-identical between the two.
        """
        cal = self._cal
        runq = self._runq
        jump = _JUMP_TABLE
        peek = cal.peek
        pop = cal.pop
        advance = self._advance
        reattempt = self._reattempt
        events = 0
        runq_fired = 0
        try:
            while cal or runq:
                if runq:
                    entry = runq[0]
                    if cal:
                        top = peek()
                        if top[0] < entry[0] or (
                            top[0] == entry[0] and top[1] < entry[1]
                        ):
                            entry = top
                            from_runq = False
                        else:
                            from_runq = True
                    else:
                        from_runq = True
                else:
                    entry = peek()
                    from_runq = False
                time = entry[0]
                if time > time_limit:
                    break
                self._now = time
                events += 1
                if from_runq:
                    runq.popleft()
                    runq_fired += 1
                    handle = entry[2]
                    handle.wake_scheduled = False
                    operation = handle.pending_op
                    if operation is not None:
                        reattempt(handle, operation)
                else:
                    pop()
                    event = entry[2]
                    cls = event.__class__
                    if cls is ResumeEvent:
                        advance(event.handle, None)
                    else:
                        jump[cls](self, event)
                if events == event_limit:
                    stats.halted_on_limit = True
                    break
        finally:
            self._event_count += events
            if self._metrics is not None:
                self._m_events.inc(events)
                self._m_runq_wakes.inc(runq_fired)
                self._m_heap_events.inc(events - runq_fired)
        return events

    def step(self) -> bool:
        """Process a single event; returns False when none are pending."""
        heap = self._heap
        runq = self._runq
        if runq and (
            not heap
            or runq[0][0] < heap[0][0]
            or (runq[0][0] == heap[0][0] and runq[0][1] < heap[0][1])
        ):
            time, _seq, handle = runq.popleft()
            self._now = time
            self._event_count += 1
            self._fire_wake(handle)
            return True
        if not heap:
            return False
        time, _seq, event = heapq.heappop(heap)
        self._now = time
        self._event_count += 1
        _JUMP_TABLE[event.__class__](self, event)
        return True

    # -- event firing ---------------------------------------------------------

    def _fire_start(self, event: StartEvent) -> None:
        handle = event.handle
        if handle.state is ProcessState.KILLED:
            return
        if self._hook is not None:
            self._hook(self._now, handle.name, "start", None)
        self._advance(handle, None)

    def _fire_resume(self, event: ResumeEvent) -> None:
        self._advance(event.handle, None)

    def _fire_retry(self, event: RetryEvent) -> None:
        self._reattempt(event.handle, event.operation)

    def _fire_callback(self, event: CallbackEvent) -> None:
        event.action()

    def _fire_wake(self, handle: ProcessHandle) -> None:
        """Fire one direct-handoff wake from the run queue."""
        handle.wake_scheduled = False
        operation = handle.pending_op
        if operation is not None:
            self._reattempt(handle, operation)

    def _reattempt(self, handle: ProcessHandle, operation: Operation) -> None:
        """Re-poll a blocked operation; resume the process on success.

        Re-blocking (status still ``empty``/``full``/``wait``) does not
        re-emit a block transition or restart the blocked-span clock: the
        process never unblocked, it was merely re-polled.
        """
        state = handle.state
        if state is _DONE or state is _KILLED:
            return
        cls = operation.__class__
        if cls is Read:
            status, payload = operation.poll(operation.index, self._now)
            if status == "ok":
                if self._observed:
                    self._note_resume(handle)
                self._advance(handle, payload)
            elif status == "wait":
                handle.state = _BLOCKED_READ
                handle.pending_op = operation
                self._push_event(payload, RetryEvent(handle, operation))
            elif status == "empty":
                handle.state = _BLOCKED_READ
                handle.pending_op = operation
                operation.channel.park_reader(operation.index, handle)
            else:  # pragma: no cover - channel contract violation
                raise ProtocolError(f"bad poll_read status {status!r}")
        elif cls is Write:
            status, _ = operation.poll(
                operation.index, operation.token, self._now
            )
            if status == "ok":
                if self._observed:
                    self._note_resume(handle)
                self._advance(handle, None)
            elif status == "full":
                handle.state = _BLOCKED_WRITE
                handle.pending_op = operation
                operation.channel.park_writer(operation.index, handle)
            else:  # pragma: no cover - channel contract violation
                raise ProtocolError(f"bad poll_write status {status!r}")

    def _note_resume(self, handle: ProcessHandle) -> None:
        """Telemetry for a blocked operation completing (cold path)."""
        if self._hook is not None:
            self._hook(self._now, handle.name, "resume", None)
        if self._m_block is not None:
            self._m_block.observe(self._now - handle.block_start)

    def _note_block(
        self, handle: ProcessHandle, kind: str, channel_name: str
    ) -> None:
        """Telemetry for a process entering a blocked state (cold path)."""
        if self._hook is not None:
            self._hook(self._now, handle.name, kind, channel_name)
        if self._m_block is not None:
            handle.block_start = self._now
            self._m_parks.inc()

    # -- process driving ------------------------------------------------------

    def _advance(self, handle: ProcessHandle, value: Any) -> None:
        """Resume the generator with ``value`` and run it until it blocks.

        Consecutive immediately-satisfiable operations (a read with a
        token ready, a write into free space) complete in this tight loop
        rather than through mutual recursion — one Python frame per
        resumption instead of three, the single hottest path in the
        engine.  Operation dispatch is by concrete class (the operation
        types are final), ordered by observed frequency.
        """
        state = handle.state
        if state is _DONE or state is _KILLED:
            return
        generator_send = handle.generator.send
        killed = _KILLED
        observed = self._observed
        now = self._now
        # ``handle.state`` is deliberately *not* set to RUNNING on every
        # loop turn: no observer can see the intermediate state (hooks and
        # stats read it only at block/done edges, which all store an
        # explicit state below), and the per-resumption store is
        # measurable.  The killed check still works — ``kill`` writes
        # KILLED into the handle whether or not the generator is live.
        while True:
            try:
                operation = generator_send(value)
            except StopIteration:
                handle.state = _DONE
                if observed and self._hook is not None:
                    self._hook(now, handle.name, "done", None)
                return
            if handle.state is killed:
                # Killed from inside its own advancement (self-kill
                # hook); drop the yielded operation.
                return
            cls = operation.__class__
            if cls is Read:
                status, payload = operation.poll(operation.index, now)
                if status == "ok":
                    value = payload
                    continue
                handle.state = _BLOCKED_READ
                handle.pending_op = operation
                if observed:
                    self._note_block(
                        handle, "block_read", operation.channel.name
                    )
                if status == "wait":
                    self._push_event(payload, RetryEvent(handle, operation))
                elif status == "empty":
                    operation.channel.park_reader(operation.index, handle)
                else:  # pragma: no cover - channel contract violation
                    raise ProtocolError(f"bad poll_read status {status!r}")
                return
            if cls is Write:
                status, _ = operation.poll(
                    operation.index, operation.token, now
                )
                if status == "ok":
                    value = None
                    continue
                if status == "full":
                    handle.state = _BLOCKED_WRITE
                    handle.pending_op = operation
                    if observed:
                        self._note_block(
                            handle, "block_write", operation.channel.name
                        )
                    operation.channel.park_writer(operation.index, handle)
                else:  # pragma: no cover - channel contract violation
                    raise ProtocolError(f"bad poll_write status {status!r}")
                return
            if cls is Delay:
                # Inlined _push_event: Delay validates duration >= 0 at
                # construction, so the target instant can never precede
                # the current one — no past-scheduling check needed.
                handle.state = _DELAYED
                handle.pending_op = operation
                if observed and self._hook is not None:
                    self._hook(
                        now, handle.name, "compute", operation.duration
                    )
                self._sequence += 1
                entry = (
                    now + operation.duration,
                    self._sequence,
                    handle.resume_event,
                )
                cal = self._cal
                if cal is None:
                    _heappush(self._heap, entry)
                else:
                    cal.push(entry)
                return
            if cls is Halt:
                handle.state = _DONE
                handle.generator.close()
                if observed and self._hook is not None:
                    self._hook(self._now, handle.name, "done", None)
                return
            raise ProtocolError(
                f"process {handle.name} yielded unknown operation "
                f"{operation!r}"
            )

    def retry(self, handle: ProcessHandle) -> None:
        """Queue a parked process's pending operation for re-attempt *now*.

        Channels call this when their state changes (a read freed space, a
        write added a token).  The wake goes onto the same-time run queue —
        the direct-handoff fast path — so the waker finishes its own event
        first and no heap traffic occurs.  Sequence numbers are drawn from
        the shared counter, keeping the total event order identical to an
        engine that schedules the retry through the heap.
        """
        state = handle.state
        if (
            state is _DONE
            or state is _KILLED
            or handle.wake_scheduled
            or handle.pending_op is None
        ):
            return
        handle.wake_scheduled = True
        if self._m_wakes is not None:
            self._m_wakes.inc()
        self._sequence += 1
        self._runq.append((self._now, self._sequence, handle))


#: Hot-path aliases for the enum members: module globals resolve faster
#: than the two-step ``ProcessState.X`` attribute chain.
_DONE = ProcessState.DONE
_KILLED = ProcessState.KILLED
_RUNNING = ProcessState.RUNNING
_BLOCKED_READ = ProcessState.BLOCKED_READ
_BLOCKED_WRITE = ProcessState.BLOCKED_WRITE
_DELAYED = ProcessState.DELAYED

#: Jump table: event record class -> bound firing method.  Dict dispatch on
#: the concrete class avoids an isinstance ladder in the hot loop.
_JUMP_TABLE = {
    StartEvent: Simulator._fire_start,
    ResumeEvent: Simulator._fire_resume,
    RetryEvent: Simulator._fire_retry,
    CallbackEvent: Simulator._fire_callback,
}
