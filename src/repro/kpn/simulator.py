"""The discrete-event engine.

Virtual time is a float (milliseconds by convention throughout the
library).  Events are totally ordered by ``(time, sequence_number)`` so two
runs of the same seeded network produce byte-identical traces — the
determinism policy of DESIGN.md Section 7.

Processes are generators driven by the engine: each yielded
:class:`~repro.kpn.operations.Operation` either completes immediately, is
scheduled for a later virtual instant (``Delay``, transfer latency), or
parks the process on a channel until a counterparty unblocks it.  This
reproduces the blocking FIFO semantics of Section 2 of the paper without
any OS threads, making fault injection (killing a replica at an exact
virtual instant) trivial and exact.

Hot-path design
---------------

The engine avoids per-event closure allocation: every scheduled unit of
work is one of four ``__slots__``-based typed records (:class:`StartEvent`,
:class:`ResumeEvent`, :class:`RetryEvent`, :class:`CallbackEvent`)
dispatched through a small jump table keyed on the record class.

Channel wake-ups take a **direct-handoff fast path**: a counterparty freed
at the *current* virtual instant is queued on a same-time run queue (a
deque) instead of round-tripping through the event heap as a
``schedule(0.0, ...)`` event.  Run-queue entries carry sequence numbers
drawn from the same counter as heap events and the main loop always fires
the globally smallest ``(time, sequence)`` next, so the observable event
order — and therefore every trace — is identical to the heap-only engine.
The queue is bounded by construction: ``wake_scheduled`` admits at most
one pending wake per registered process.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from collections import deque
from enum import Enum
from time import perf_counter
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.kpn.errors import ProtocolError, SimulationError
from repro.kpn.operations import Delay, Halt, Operation, Read, Write
from repro.kpn import kernel as _kernel
from repro.kpn.partition import endpoint_channels, partition_processes
from repro.kpn.scheduler import CalendarQueue
from repro.kpn.stepmachine import compile_stepfn

_heappush = heapq.heappush


class ProcessState(Enum):
    """Lifecycle states of a process inside the engine."""

    READY = "ready"
    RUNNING = "running"
    BLOCKED_READ = "blocked_read"
    BLOCKED_WRITE = "blocked_write"
    DELAYED = "delayed"
    DONE = "done"
    KILLED = "killed"


class ProcessHandle:
    """Engine-side wrapper around one process behaviour.

    In generator mode ``generator`` is the live ``behavior()`` generator
    and ``stepfn`` is ``None``.  In stepped mode ``stepfn`` is the
    compiled ``step(value, now) -> Operation | None`` machine (see
    :mod:`repro.kpn.stepmachine`); ``generator`` is ``None`` for
    hand-compiled shapes and the adapted generator otherwise (kept so
    :meth:`Simulator.kill` can close it).
    """

    __slots__ = (
        "name",
        "generator",
        "stepfn",
        "owner",
        "state",
        "pending_op",
        "wake_scheduled",
        "is_parked",
        "block_start",
        "resume_event",
    )

    def __init__(
        self, name: str, generator, owner: Any = None, stepfn=None
    ) -> None:
        self.name = name
        self.generator = generator
        self.stepfn = stepfn
        self.owner = owner
        self.state = ProcessState.READY
        self.pending_op: Optional[Operation] = None
        #: Reusable Delay-completion record.  A process can be inside at
        #: most one ``Delay`` at a time, so one record per handle replaces
        #: one allocation per delay — the most frequent event kind.
        self.resume_event = ResumeEvent(self)
        #: A wake (retry) for this handle is already queued; channels may
        #: wake a party several times in one instant, the engine coalesces.
        self.wake_scheduled = False
        #: The handle sits in some channel's parked deque.  A process
        #: blocks on exactly one operation at a time, so a single flag
        #: replaces the per-channel ``handle in parked`` membership scans.
        self.is_parked = False
        #: Virtual instant the current blocked span began (only maintained
        #: while engine metrics are enabled; feeds ``sim.block_ms``).
        self.block_start = 0.0

    @property
    def alive(self) -> bool:
        return self.state not in (ProcessState.DONE, ProcessState.KILLED)

    @property
    def blocked(self) -> bool:
        return self.state in (
            ProcessState.BLOCKED_READ,
            ProcessState.BLOCKED_WRITE,
        )

    def __repr__(self) -> str:
        return f"ProcessHandle({self.name}, {self.state.value})"


class StartEvent:
    """First advancement of a freshly registered process."""

    __slots__ = ("handle",)

    def __init__(self, handle: ProcessHandle) -> None:
        self.handle = handle


class ResumeEvent:
    """Resume a delayed process (``Delay`` completion)."""

    __slots__ = ("handle",)

    def __init__(self, handle: ProcessHandle) -> None:
        self.handle = handle


class RetryEvent:
    """Re-attempt a blocked operation at a known future instant.

    Used for the channel ``("wait", t)`` status: a token is in flight and
    becomes readable at ``t``.  Same-instant wakes never build this record
    — they ride the direct-handoff run queue instead.
    """

    __slots__ = ("handle", "operation")

    def __init__(self, handle: ProcessHandle, operation: Operation) -> None:
        self.handle = handle
        self.operation = operation


class CallbackEvent:
    """An arbitrary callable — the public ``schedule`` API, fault
    injection hooks, and tests."""

    __slots__ = ("action",)

    def __init__(self, action: Callable[[], None]) -> None:
        self.action = action


@dataclass
class RunStats:
    """Summary of one :meth:`Simulator.run` call."""

    events: int = 0
    end_time: float = 0.0
    halted_on_limit: bool = False
    blocked_processes: List[str] = field(default_factory=list)
    #: Wall-clock duration of the run loop (seconds).
    wall_time_s: float = 0.0
    #: Events processed per wall-clock second — the in-band throughput
    #: signal perf PRs are measured against.
    events_per_sec: float = 0.0


class Simulator:
    """A deterministic discrete-event simulator.

    Typical use::

        sim = Simulator()
        sim.register(process)           # a repro.kpn.process.Process
        channel.bind(sim)               # channels learn how to wake parties
        stats = sim.run(until=10_000.0)
    """

    def __init__(
        self,
        metrics: Any = None,
        scheduler: str = "calendar",
        calendar_threshold: int = 8,
        exec_mode: str = "stepped",
        partitioned: bool = False,
        kernel: str = "auto",
    ) -> None:
        if scheduler not in ("calendar", "heap"):
            raise ValueError(
                f"scheduler must be 'calendar' or 'heap', got {scheduler!r}"
            )
        if exec_mode not in ("stepped", "generator"):
            raise ValueError(
                "exec_mode must be 'stepped' or 'generator', "
                f"got {exec_mode!r}"
            )
        if kernel not in ("auto", "pure", "compiled"):
            raise ValueError(
                "kernel must be 'auto', 'pure' or 'compiled', "
                f"got {kernel!r}"
            )
        if kernel == "compiled":
            if exec_mode != "stepped":
                raise ValueError(
                    "kernel='compiled' requires exec_mode='stepped'"
                )
            if not _kernel.available():
                raise RuntimeError(
                    "compiled kernel requested but repro.kpn._ckernel is "
                    "not built; see docs/API.md (REPRO_BUILD_CKERNEL=1) "
                    "or use kernel='auto'"
                )
        #: Drive-kernel policy: ``"auto"`` (default) uses the compiled
        #: heap drive when the optional C extension is built,
        #: ``"pure"`` forces the pure-Python loops, ``"compiled"``
        #: requires the extension.  Traces are byte-identical either
        #: way; the kernel silently defers to the pure loop whenever
        #: observation (hooks/metrics) is active.
        self.kernel = kernel
        #: Execution mode.  ``"stepped"`` (default) compiles each
        #: registered process into an explicit step machine
        #: (:mod:`repro.kpn.stepmachine`) and drives it through plain
        #: function calls; ``"generator"`` resumes ``behavior()``
        #: generators directly.  Both consume identical sequence numbers
        #: in identical order, so traces are byte-identical.
        self.exec_mode = exec_mode
        if exec_mode == "stepped":
            # Instance attributes shadow the class methods: every advance
            # site (_fire_*, _reattempt) and :meth:`run` pick up the
            # stepped loops without per-call mode tests.
            self._advance = self._advance_stepped
            self._drive_heap = self._drive_heap_stepped
            self._drive_calendar = self._drive_calendar_stepped
            if kernel != "pure" and _kernel.available():
                self._drive_heap = self._drive_heap_ckernel
        #: Partitioned batch advance.  When True, :meth:`run` detects the
        #: independent subnetwork partitions of the registered graph
        #: (connected components over shared channels — see
        #: :mod:`repro.kpn.partition`), gives each partition its own
        #: calendar queue and run queue, and advances whole partitions in
        #: bursts between cross-partition synchronisation points (global
        #: :class:`CallbackEvent`\ s — fault injections, ``schedule()``
        #: actions — and the run horizon).  Within a partition the event
        #: order is identical to the interleaved engine, and partitions
        #: never exchange tokens, so every channel trace is
        #: byte-identical; only the wall-clock interleaving (and
        #: therefore which events a ``max_events`` budget attributes)
        #: differs.
        self.partitioned = partitioned
        #: Scheduler policy.  ``"calendar"`` (default) engages an O(1)
        #: amortised :class:`~repro.kpn.scheduler.CalendarQueue` for the
        #: duration of a :meth:`run` whenever the pending-event population
        #: at run entry reaches ``calendar_threshold``; ``"heap"`` always
        #: uses the plain binary heap.  Event order (and thus every trace)
        #: is identical under both.
        self.scheduler = scheduler
        self.calendar_threshold = calendar_threshold
        #: The engaged CalendarQueue during a calendar-mode run, else None.
        #: Scheduling paths (`_push_event`, the Delay fast path) route
        #: into it when set.
        self._cal = None
        self._heap: List[Tuple[float, int, Any]] = []
        #: Direct-handoff run queue: ``(time, sequence, handle)`` wakes at
        #: the current instant, FIFO in sequence order.
        self._runq: Deque[Tuple[float, int, ProcessHandle]] = deque()
        self._sequence = 0
        self._now = 0.0
        self._handles: Dict[str, ProcessHandle] = {}
        self._event_count = 0
        #: Optional telemetry (see :mod:`repro.obs`).  Instruments are
        #: created eagerly here so the hot paths only test ``is not None``
        #: — a disabled (or absent) registry costs one pointer check per
        #: sample site and nothing per event.
        self._metrics = (
            metrics if metrics is not None and metrics.enabled else None
        )
        if self._metrics is not None:
            self._m_events = self._metrics.counter("sim.events")
            self._m_heap_events = self._metrics.counter("sim.heap_events")
            self._m_runq_wakes = self._metrics.counter("sim.runq_wakes")
            self._m_parks = self._metrics.counter("sim.parks")
            self._m_wakes = self._metrics.counter("sim.wakes_requested")
            self._m_block = self._metrics.histogram("sim.block_ms")
        else:
            self._m_parks = None
            self._m_wakes = None
            self._m_block = None
        #: Optional transition hook ``f(time, process, kind, detail)``
        #: feeding a :class:`repro.obs.timeline.RunTimeline`.
        self._hook: Optional[Callable[[float, str, str, Any], None]] = None
        #: Combined "any per-transition observer active" flag: the hot
        #: paths test this single attribute and only then take the cold
        #: ``_note_*`` calls.
        self._observed = self._m_block is not None

    # -- observability ------------------------------------------------------

    def set_transition_hook(
        self, hook: Optional[Callable[[float, str, str, Any], None]]
    ) -> None:
        """Install (or clear) the process-transition observer.

        ``hook(time, process_name, kind, detail)`` fires on every process
        lifecycle edge: ``start``, ``compute`` (detail = delay ms),
        ``block_read`` / ``block_write`` (detail = channel name),
        ``resume``, ``done`` and ``killed``.  The hook must only record —
        mutating engine state from it is undefined behaviour.
        """
        self._hook = hook
        self._observed = hook is not None or self._m_block is not None

    # -- time and scheduling ----------------------------------------------

    @property
    def now(self) -> float:
        """Current virtual time (ms)."""
        return self._now

    @property
    def event_count(self) -> int:
        """Total number of events processed so far."""
        return self._event_count

    def schedule(self, delay: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` to run ``delay`` ms from now."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past ({delay})")
        self.schedule_at(self._now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> None:
        """Schedule ``action`` at an absolute virtual instant."""
        self._push_event(time, CallbackEvent(action))

    def _push_event(self, time: float, event: Any) -> None:
        """Push a typed event record onto the event queue at ``time``."""
        if time < self._now - 1e-12:
            raise SimulationError(
                f"cannot schedule at {time} before now ({self._now})"
            )
        self._sequence += 1
        entry = (max(time, self._now), self._sequence, event)
        cal = self._cal
        if cal is None:
            heapq.heappush(self._heap, entry)
        else:
            cal.push(entry)

    # -- process management -------------------------------------------------

    def register(self, process: Any) -> ProcessHandle:
        """Register a process (anything with ``name`` and ``behavior()``).

        The process starts at time 0 (or at registration time if the run
        has already started).
        """
        name = process.name
        if name in self._handles:
            raise ProtocolError(f"duplicate process name: {name}")
        if self.exec_mode == "stepped":
            stepfn, generator = compile_stepfn(process)
            handle = ProcessHandle(
                name, generator, owner=process, stepfn=stepfn
            )
        else:
            handle = ProcessHandle(name, process.behavior(), owner=process)
        self._handles[name] = handle
        if hasattr(process, "attach"):
            process.attach(self, handle)
        self._push_event(self._now, StartEvent(handle))
        return handle

    def register_all(self, processes: Iterable[Any]) -> List[ProcessHandle]:
        """Register a collection of processes."""
        return [self.register(p) for p in processes]

    def handle(self, name: str) -> ProcessHandle:
        """Look up a process handle by name."""
        return self._handles[name]

    def kill(self, name: str) -> None:
        """Mark a process killed (fault injection).

        A killed process never runs again: pending events targeting it are
        dropped at fire time, and parked channel entries ignore it.
        """
        handle = self._handles[name]
        if handle.state is ProcessState.DONE:
            return
        handle.state = ProcessState.KILLED
        if self._hook is not None:
            self._hook(self._now, name, "killed", None)
        generator = handle.generator
        if generator is not None:
            try:
                generator.close()
            except (RuntimeError, ValueError):
                # The generator is currently executing — a process killing
                # itself, or a hook firing while the engine is mid-advance.
                # The KILLED state already guarantees it never advances
                # again; the suspended frame is reclaimed by the GC.
                pass

    def blocked_processes(self) -> List[str]:
        """Names of live processes currently parked on a channel."""
        return [h.name for h in self._handles.values() if h.blocked]

    def live_processes(self) -> List[str]:
        """Names of processes that are not done/killed."""
        return [h.name for h in self._handles.values() if h.alive]

    # -- engine loop ---------------------------------------------------------

    def run(
        self,
        until: Optional[float] = None,
        max_events: Optional[int] = None,
    ) -> RunStats:
        """Process events until the queues drain, ``until`` is passed, or
        ``max_events`` fire.  Returns a :class:`RunStats` summary.

        Running out of events with parked processes is *quiescence* (the
        normal end of a finite streaming run), not an error; callers that
        consider it a deadlock can inspect ``stats.blocked_processes``.

        Scheduler engagement happens here: with ``scheduler="calendar"``
        and at least ``calendar_threshold`` pending events, the run is
        driven from a :class:`~repro.kpn.scheduler.CalendarQueue` (O(1)
        amortised scheduling); pending entries spill back to the plain
        heap on exit so ``step()``/inspection keep working.  Event order
        is identical either way.
        """
        stats = RunStats()
        time_limit = float("inf") if until is None else until
        event_limit = -1 if max_events is None else max_events
        started = perf_counter()
        if self.partitioned and self._handles:
            events = self._drive_partitioned(stats, time_limit, event_limit)
        elif (
            self.scheduler == "calendar"
            and self._cal is None
            and len(self._heap) >= self.calendar_threshold
        ):
            self._cal = CalendarQueue(self._heap)
            self._heap = []
            try:
                events = self._drive_calendar(stats, time_limit, event_limit)
            finally:
                self._heap = self._cal.drain()
                heapq.heapify(self._heap)
                self._cal = None
        else:
            events = self._drive_heap(stats, time_limit, event_limit)
        stats.events = events
        stats.wall_time_s = perf_counter() - started
        if stats.wall_time_s > 0:
            stats.events_per_sec = stats.events / stats.wall_time_s
        stats.end_time = self._now
        stats.blocked_processes = self.blocked_processes()
        return stats

    def _drive_heap(
        self, stats: RunStats, time_limit: float, event_limit: int
    ) -> int:
        """The binary-heap run loop (small populations, ``scheduler="heap"``)."""
        heap = self._heap
        runq = self._runq
        jump = _JUMP_TABLE
        pop = heapq.heappop
        advance = self._advance
        reattempt = self._reattempt
        events = 0
        runq_fired = 0
        try:
            while heap or runq:
                # The next event is the globally smallest (time, sequence)
                # of the heap top and the run-queue front.  Run-queue
                # entries are pushed with monotonically increasing sequence
                # numbers at the then-current time, so the front is always
                # the queue minimum.
                if runq:
                    entry = runq[0]
                    if heap:
                        top = heap[0]
                        if top[0] < entry[0] or (
                            top[0] == entry[0] and top[1] < entry[1]
                        ):
                            entry = top
                            from_runq = False
                        else:
                            from_runq = True
                    else:
                        from_runq = True
                else:
                    entry = heap[0]
                    from_runq = False
                time = entry[0]
                if time > time_limit:
                    break
                self._now = time
                events += 1
                if from_runq:
                    # Direct-handoff wake, inlined from _fire_wake.
                    runq.popleft()
                    runq_fired += 1
                    handle = entry[2]
                    handle.wake_scheduled = False
                    operation = handle.pending_op
                    if operation is not None:
                        reattempt(handle, operation)
                else:
                    pop(heap)
                    event = entry[2]
                    cls = event.__class__
                    if cls is ResumeEvent:
                        # Fast path for the most frequent record (Delay
                        # completions); everything else takes the table.
                        advance(event.handle, None)
                    else:
                        jump[cls](self, event)
                if events == event_limit:
                    stats.halted_on_limit = True
                    break
        finally:
            self._event_count += events
            if self._metrics is not None:
                self._m_events.inc(events)
                self._m_runq_wakes.inc(runq_fired)
                self._m_heap_events.inc(events - runq_fired)
        return events

    def _drive_calendar(
        self, stats: RunStats, time_limit: float, event_limit: int
    ) -> int:
        """The calendar-queue run loop.

        Structurally identical to :meth:`_drive_heap` with the heap's
        ``[0]``/``heappop`` replaced by the calendar's ``peek``/``pop``;
        both pop the globally smallest ``(time, sequence)`` so the event
        order — and every trace — is byte-identical between the two.
        """
        cal = self._cal
        runq = self._runq
        jump = _JUMP_TABLE
        peek = cal.peek
        pop = cal.pop
        advance = self._advance
        reattempt = self._reattempt
        events = 0
        runq_fired = 0
        try:
            while cal or runq:
                if runq:
                    entry = runq[0]
                    if cal:
                        top = peek()
                        if top[0] < entry[0] or (
                            top[0] == entry[0] and top[1] < entry[1]
                        ):
                            entry = top
                            from_runq = False
                        else:
                            from_runq = True
                    else:
                        from_runq = True
                else:
                    entry = peek()
                    from_runq = False
                time = entry[0]
                if time > time_limit:
                    break
                self._now = time
                events += 1
                if from_runq:
                    runq.popleft()
                    runq_fired += 1
                    handle = entry[2]
                    handle.wake_scheduled = False
                    operation = handle.pending_op
                    if operation is not None:
                        reattempt(handle, operation)
                else:
                    pop()
                    event = entry[2]
                    cls = event.__class__
                    if cls is ResumeEvent:
                        advance(event.handle, None)
                    else:
                        jump[cls](self, event)
                if events == event_limit:
                    stats.halted_on_limit = True
                    break
        finally:
            self._event_count += events
            if self._metrics is not None:
                self._m_events.inc(events)
                self._m_runq_wakes.inc(runq_fired)
                self._m_heap_events.inc(events - runq_fired)
        return events

    def _drive_heap_stepped(
        self, stats: RunStats, time_limit: float, event_limit: int
    ) -> int:
        """Stepped-mode heap run loop with the advance loop fused in.

        Same event selection as :meth:`_drive_heap`, but the two
        per-event hot continuations — a ``ResumeEvent`` resuming a
        delayed process and a run-queue wake re-polling a blocked one —
        fall directly into an inlined copy of the step loop instead of
        calling :meth:`_advance_stepped`.  At one advance per event the
        saved call + prologue is the engine's largest remaining
        per-event cost.  Sequence numbers are consumed at exactly the
        same points, so event order (and every trace) is unchanged.
        """
        heap = self._heap
        runq = self._runq
        jump = _JUMP_TABLE
        pop = heapq.heappop
        push = _heappush
        note_block = self._note_block
        events = 0
        runq_fired = 0
        observed = self._observed
        done = _DONE
        killed = _KILLED
        try:
            while heap or runq:
                if runq:
                    entry = runq[0]
                    if heap:
                        top = heap[0]
                        if top[0] < entry[0] or (
                            top[0] == entry[0] and top[1] < entry[1]
                        ):
                            entry = top
                            from_runq = False
                        else:
                            from_runq = True
                    else:
                        from_runq = True
                else:
                    entry = heap[0]
                    from_runq = False
                time = entry[0]
                if time > time_limit:
                    break
                self._now = time
                events += 1
                # ``handle`` non-None after selection means: enter the
                # fused step loop with ``value``.
                handle = None
                if from_runq:
                    # Direct-handoff wake: inlined _reattempt.  A
                    # re-block keeps the original blocked span — no
                    # block transition is re-emitted.
                    runq.popleft()
                    runq_fired += 1
                    waked = entry[2]
                    waked.wake_scheduled = False
                    operation = waked.pending_op
                    state = waked.state
                    if (
                        operation is not None
                        and state is not done
                        and state is not killed
                    ):
                        ocls = operation.__class__
                        if ocls is Read:
                            status, payload = operation.poll(
                                operation.index, time
                            )
                            if status == "ok":
                                if observed:
                                    self._note_resume(waked)
                                handle = waked
                                value = payload
                            elif status == "wait":
                                waked.state = _BLOCKED_READ
                                waked.pending_op = operation
                                self._push_event(
                                    payload, RetryEvent(waked, operation)
                                )
                            elif status == "empty":
                                waked.state = _BLOCKED_READ
                                waked.pending_op = operation
                                operation.channel.park_reader(
                                    operation.index, waked
                                )
                            else:  # pragma: no cover - contract violation
                                raise ProtocolError(
                                    f"bad poll_read status {status!r}"
                                )
                        elif ocls is Write:
                            status, _ = operation.poll(
                                operation.index, operation.token, time
                            )
                            if status == "ok":
                                if observed:
                                    self._note_resume(waked)
                                handle = waked
                                value = None
                            elif status == "full":
                                waked.state = _BLOCKED_WRITE
                                waked.pending_op = operation
                                operation.channel.park_writer(
                                    operation.index, waked
                                )
                            else:  # pragma: no cover - contract violation
                                raise ProtocolError(
                                    f"bad poll_write status {status!r}"
                                )
                else:
                    pop(heap)
                    event = entry[2]
                    cls = event.__class__
                    if cls is ResumeEvent:
                        resumed = event.handle
                        state = resumed.state
                        if state is not done and state is not killed:
                            handle = resumed
                            value = None
                    else:
                        jump[cls](self, event)
                if handle is not None:
                    # Fused step loop — the body of _advance_stepped
                    # with ``now`` pinned to this event's instant and
                    # Delay pushing straight onto the heap (``_cal`` is
                    # None for the whole heap drive by construction).
                    # ``trusted`` marks self-polling machines: a
                    # Read/Write they return has already failed its
                    # poll (idempotently), so the engine parks it
                    # directly instead of polling again.
                    stepfn = handle.stepfn
                    trusted = handle.generator is None
                    while True:
                        operation = stepfn(value, time)
                        if operation is None:
                            handle.state = done
                            if observed and self._hook is not None:
                                self._hook(time, handle.name, "done", None)
                            break
                        if handle.state is killed:
                            break
                        ocls = operation.__class__
                        if ocls is Read:
                            if trusted:
                                handle.state = _BLOCKED_READ
                                handle.pending_op = operation
                                if observed:
                                    note_block(
                                        handle, "block_read",
                                        operation.channel.name,
                                    )
                                retry_at = operation.retry_at
                                if retry_at is None:
                                    operation.channel.park_reader(
                                        operation.index, handle
                                    )
                                else:
                                    self._push_event(
                                        retry_at,
                                        RetryEvent(handle, operation),
                                    )
                                break
                            status, payload = operation.poll(
                                operation.index, time
                            )
                            if status == "ok":
                                value = payload
                                continue
                            handle.state = _BLOCKED_READ
                            handle.pending_op = operation
                            if observed:
                                note_block(
                                    handle, "block_read",
                                    operation.channel.name,
                                )
                            if status == "wait":
                                self._push_event(
                                    payload, RetryEvent(handle, operation)
                                )
                            elif status == "empty":
                                operation.channel.park_reader(
                                    operation.index, handle
                                )
                            else:  # pragma: no cover - contract violation
                                raise ProtocolError(
                                    f"bad poll_read status {status!r}"
                                )
                            break
                        if ocls is Write:
                            if trusted:
                                handle.state = _BLOCKED_WRITE
                                handle.pending_op = operation
                                if observed:
                                    note_block(
                                        handle, "block_write",
                                        operation.channel.name,
                                    )
                                operation.channel.park_writer(
                                    operation.index, handle
                                )
                                break
                            status, _ = operation.poll(
                                operation.index, operation.token, time
                            )
                            if status == "ok":
                                value = None
                                continue
                            if status == "full":
                                handle.state = _BLOCKED_WRITE
                                handle.pending_op = operation
                                if observed:
                                    note_block(
                                        handle, "block_write",
                                        operation.channel.name,
                                    )
                                operation.channel.park_writer(
                                    operation.index, handle
                                )
                            else:  # pragma: no cover - contract violation
                                raise ProtocolError(
                                    f"bad poll_write status {status!r}"
                                )
                            break
                        if ocls is Delay:
                            handle.state = _DELAYED
                            handle.pending_op = operation
                            if observed and self._hook is not None:
                                self._hook(
                                    time, handle.name, "compute",
                                    operation.duration,
                                )
                            sequence = self._sequence + 1
                            self._sequence = sequence
                            push(
                                heap,
                                (
                                    time + operation.duration,
                                    sequence,
                                    handle.resume_event,
                                ),
                            )
                            break
                        if ocls is Halt:
                            handle.state = done
                            generator = handle.generator
                            if generator is not None:
                                generator.close()
                            if observed and self._hook is not None:
                                self._hook(time, handle.name, "done", None)
                            break
                        raise ProtocolError(
                            f"process {handle.name} yielded unknown "
                            f"operation {operation!r}"
                        )
                if events == event_limit:
                    stats.halted_on_limit = True
                    break
        finally:
            self._event_count += events
            if self._metrics is not None:
                self._m_events.inc(events)
                self._m_runq_wakes.inc(runq_fired)
                self._m_heap_events.inc(events - runq_fired)
        return events

    def _drive_calendar_stepped(
        self, stats: RunStats, time_limit: float, event_limit: int
    ) -> int:
        """Stepped-mode calendar run loop.

        :meth:`_drive_heap_stepped` with the heap's ``[0]``/``heappop``
        replaced by the calendar's ``peek``/``pop`` and the inlined
        Delay push routed into the calendar; pop order is identical, so
        so are traces.
        """
        cal = self._cal
        runq = self._runq
        jump = _JUMP_TABLE
        peek = cal.peek
        pop = cal.pop
        cal_push = cal.push
        note_block = self._note_block
        events = 0
        runq_fired = 0
        observed = self._observed
        done = _DONE
        killed = _KILLED
        try:
            while cal or runq:
                if runq:
                    entry = runq[0]
                    if cal:
                        top = peek()
                        if top[0] < entry[0] or (
                            top[0] == entry[0] and top[1] < entry[1]
                        ):
                            entry = top
                            from_runq = False
                        else:
                            from_runq = True
                    else:
                        from_runq = True
                else:
                    entry = peek()
                    from_runq = False
                time = entry[0]
                if time > time_limit:
                    break
                self._now = time
                events += 1
                handle = None
                if from_runq:
                    runq.popleft()
                    runq_fired += 1
                    waked = entry[2]
                    waked.wake_scheduled = False
                    operation = waked.pending_op
                    state = waked.state
                    if (
                        operation is not None
                        and state is not done
                        and state is not killed
                    ):
                        ocls = operation.__class__
                        if ocls is Read:
                            status, payload = operation.poll(
                                operation.index, time
                            )
                            if status == "ok":
                                if observed:
                                    self._note_resume(waked)
                                handle = waked
                                value = payload
                            elif status == "wait":
                                waked.state = _BLOCKED_READ
                                waked.pending_op = operation
                                self._push_event(
                                    payload, RetryEvent(waked, operation)
                                )
                            elif status == "empty":
                                waked.state = _BLOCKED_READ
                                waked.pending_op = operation
                                operation.channel.park_reader(
                                    operation.index, waked
                                )
                            else:  # pragma: no cover - contract violation
                                raise ProtocolError(
                                    f"bad poll_read status {status!r}"
                                )
                        elif ocls is Write:
                            status, _ = operation.poll(
                                operation.index, operation.token, time
                            )
                            if status == "ok":
                                if observed:
                                    self._note_resume(waked)
                                handle = waked
                                value = None
                            elif status == "full":
                                waked.state = _BLOCKED_WRITE
                                waked.pending_op = operation
                                operation.channel.park_writer(
                                    operation.index, waked
                                )
                            else:  # pragma: no cover - contract violation
                                raise ProtocolError(
                                    f"bad poll_write status {status!r}"
                                )
                else:
                    pop()
                    event = entry[2]
                    cls = event.__class__
                    if cls is ResumeEvent:
                        resumed = event.handle
                        state = resumed.state
                        if state is not done and state is not killed:
                            handle = resumed
                            value = None
                    else:
                        jump[cls](self, event)
                if handle is not None:
                    stepfn = handle.stepfn
                    trusted = handle.generator is None
                    while True:
                        operation = stepfn(value, time)
                        if operation is None:
                            handle.state = done
                            if observed and self._hook is not None:
                                self._hook(time, handle.name, "done", None)
                            break
                        if handle.state is killed:
                            break
                        ocls = operation.__class__
                        if ocls is Read:
                            if trusted:
                                handle.state = _BLOCKED_READ
                                handle.pending_op = operation
                                if observed:
                                    note_block(
                                        handle, "block_read",
                                        operation.channel.name,
                                    )
                                retry_at = operation.retry_at
                                if retry_at is None:
                                    operation.channel.park_reader(
                                        operation.index, handle
                                    )
                                else:
                                    self._push_event(
                                        retry_at,
                                        RetryEvent(handle, operation),
                                    )
                                break
                            status, payload = operation.poll(
                                operation.index, time
                            )
                            if status == "ok":
                                value = payload
                                continue
                            handle.state = _BLOCKED_READ
                            handle.pending_op = operation
                            if observed:
                                note_block(
                                    handle, "block_read",
                                    operation.channel.name,
                                )
                            if status == "wait":
                                self._push_event(
                                    payload, RetryEvent(handle, operation)
                                )
                            elif status == "empty":
                                operation.channel.park_reader(
                                    operation.index, handle
                                )
                            else:  # pragma: no cover - contract violation
                                raise ProtocolError(
                                    f"bad poll_read status {status!r}"
                                )
                            break
                        if ocls is Write:
                            if trusted:
                                handle.state = _BLOCKED_WRITE
                                handle.pending_op = operation
                                if observed:
                                    note_block(
                                        handle, "block_write",
                                        operation.channel.name,
                                    )
                                operation.channel.park_writer(
                                    operation.index, handle
                                )
                                break
                            status, _ = operation.poll(
                                operation.index, operation.token, time
                            )
                            if status == "ok":
                                value = None
                                continue
                            if status == "full":
                                handle.state = _BLOCKED_WRITE
                                handle.pending_op = operation
                                if observed:
                                    note_block(
                                        handle, "block_write",
                                        operation.channel.name,
                                    )
                                operation.channel.park_writer(
                                    operation.index, handle
                                )
                            else:  # pragma: no cover - contract violation
                                raise ProtocolError(
                                    f"bad poll_write status {status!r}"
                                )
                            break
                        if ocls is Delay:
                            handle.state = _DELAYED
                            handle.pending_op = operation
                            if observed and self._hook is not None:
                                self._hook(
                                    time, handle.name, "compute",
                                    operation.duration,
                                )
                            sequence = self._sequence + 1
                            self._sequence = sequence
                            cal_push(
                                (
                                    time + operation.duration,
                                    sequence,
                                    handle.resume_event,
                                )
                            )
                            break
                        if ocls is Halt:
                            handle.state = done
                            generator = handle.generator
                            if generator is not None:
                                generator.close()
                            if observed and self._hook is not None:
                                self._hook(time, handle.name, "done", None)
                            break
                        raise ProtocolError(
                            f"process {handle.name} yielded unknown "
                            f"operation {operation!r}"
                        )
                if events == event_limit:
                    stats.halted_on_limit = True
                    break
        finally:
            self._event_count += events
            if self._metrics is not None:
                self._m_events.inc(events)
                self._m_runq_wakes.inc(runq_fired)
                self._m_heap_events.inc(events - runq_fired)
        return events

    def _dispatch_event(self, event: Any) -> None:
        """Fire one typed event via the jump table.

        The compiled kernel's callback for the cold event kinds
        (Start/Retry/Callback); keeps the dispatch dict private to this
        module.
        """
        _JUMP_TABLE[event.__class__](self, event)

    def _drive_heap_ckernel(
        self, stats: RunStats, time_limit: float, event_limit: int
    ) -> int:
        """Heap drive via the compiled kernel (stepped mode only).

        The C loop mirrors :meth:`_drive_heap_stepped` exactly but only
        handles unobserved runs; with a transition hook or metrics
        registry active — from the start, or enabled by a mid-run
        callback (the ``bail`` flag) — the pure loop takes over with
        the remaining event budget.  Event order and traces are
        byte-identical either way.
        """
        if self._observed or self._metrics is not None:
            return self._drive_heap_stepped(stats, time_limit, event_limit)
        events, halted, bail = _kernel.DRIVE(self, time_limit, event_limit)
        if halted:
            stats.halted_on_limit = True
        elif bail:
            remaining = -1 if event_limit < 0 else event_limit - events
            if remaining != 0:
                events += self._drive_heap_stepped(
                    stats, time_limit, remaining
                )
        return events

    # -- partitioned batch advance -----------------------------------------

    def _drive_partitioned(
        self, stats: RunStats, time_limit: float, event_limit: int
    ) -> int:
        """Advance independent subnetwork partitions in bursts.

        Partitions (connected components over shared channels) never
        exchange tokens, so their event streams are causally
        independent: firing all of partition 0's events up to a
        synchronisation point, then all of partition 1's, produces the
        same per-partition — and therefore per-channel — event order as
        the fully interleaved engine.  Synchronisation points are the
        events that *can* couple partitions: global
        :class:`CallbackEvent` actions (fault injections, ``schedule()``
        callbacks may touch any process) and the run horizon.  The rule:
        no partition event at ``(time, seq)`` at or after a pending
        callback's ``(time, seq)`` fires until every partition has been
        advanced to that callback and the callback has run.

        Each partition owns a :class:`CalendarQueue` and a direct-handoff
        run queue; ``self._cal`` / ``self._runq`` are pointed at the
        active partition's structures for the duration of its burst so
        every scheduling path (``_push_event``, the ``Delay`` fast path,
        :meth:`retry`) routes into the right partition without per-call
        tests.  Pending entries spill back to the plain heap on exit so
        ``step()`` and inspection keep working.
        """
        handles = list(self._handles.values())
        owners = [
            h.owner if h.owner is not None else h for h in handles
        ]
        groups = partition_processes(owners)
        part_of: Dict[str, int] = {}
        chan_part: Dict[int, int] = {}
        for pid, group in enumerate(groups):
            for i in group:
                part_of[handles[i].name] = pid
                for channel in endpoint_channels(owners[i]):
                    chan_part[id(channel)] = pid
        queues: List[CalendarQueue] = [CalendarQueue() for _ in groups]
        runqs: List[Deque] = [deque() for _ in groups]
        nows: List[float] = [self._now for _ in groups]
        #: Global synchronisation events, ordered by (time, sequence).
        barriers: List[Tuple[float, int, Any]] = []

        def route(entry: Tuple[float, int, Any]) -> None:
            event = entry[2]
            if event.__class__ is CallbackEvent:
                _heappush(barriers, entry)
                return
            name = event.handle.name
            pid = part_of.get(name)
            if pid is None:
                pid = self._adopt_partition(
                    name, part_of, chan_part, queues, runqs, nows
                )
            queues[pid].push(entry)

        for entry in self._heap:
            route(entry)
        self._heap = []
        for entry in self._runq:
            runqs[part_of[entry[2].name]].append(entry)
        self._runq.clear()

        metrics = self._metrics
        part_counters = (
            [
                metrics.counter(f"sim.partition.{pid}.events")
                for pid in range(len(groups))
            ]
            if metrics is not None
            else None
        )
        saved_runq = self._runq
        events = 0
        limited = False
        try:
            while True:
                if barriers and barriers[0][0] <= time_limit:
                    barrier_time, barrier_seq, _ = barriers[0]
                    fire_barrier = True
                else:
                    barrier_time, barrier_seq = time_limit, None
                    fire_barrier = False
                pid = 0
                while pid < len(queues):
                    self._cal = queues[pid]
                    self._runq = runqs[pid]
                    self._now = nows[pid]
                    fired = self._burst(
                        queues[pid],
                        runqs[pid],
                        barrier_time,
                        barrier_seq,
                        -1 if event_limit < 0 else event_limit - events,
                    )
                    nows[pid] = self._now
                    events += fired
                    if part_counters is not None:
                        if pid >= len(part_counters):
                            part_counters.extend(
                                metrics.counter(f"sim.partition.{q}.events")
                                for q in range(len(part_counters),
                                               len(queues))
                            )
                        part_counters[pid].inc(fired)
                    if events == event_limit:
                        limited = True
                        break
                    pid += 1
                if limited:
                    stats.halted_on_limit = True
                    break
                if not fire_barrier:
                    break
                # Every partition has reached the barrier: fire the
                # global callback with scheduling staged, then route
                # whatever it produced.
                entry = heapq.heappop(barriers)
                self._now = barrier_time
                nows = [max(t, barrier_time) for t in nows]
                self._cal = None
                self._heap = []
                self._runq = deque()
                entry[2].action()
                events += 1
                staged, self._heap = self._heap, []
                for staged_entry in staged:
                    route(staged_entry)
                for staged_entry in self._runq:
                    handle = staged_entry[2]
                    runqs[part_of[handle.name]].append(staged_entry)
                if events == event_limit:
                    stats.halted_on_limit = True
                    break
        finally:
            self._cal = None
            self._runq = saved_runq
            self._runq.clear()
            heap: List[Tuple[float, int, Any]] = []
            for queue in queues:
                heap.extend(queue.drain())
            heap.extend(barriers)
            heapq.heapify(heap)
            self._heap = heap
            pending_wakes = sorted(
                (entry for runq in runqs for entry in runq),
                key=lambda e: (e[0], e[1]),
            )
            self._runq.extend(pending_wakes)
            self._now = max(nows) if nows else self._now
            self._event_count += events
            if metrics is not None:
                self._m_events.inc(events)
        return events

    def _adopt_partition(
        self,
        name: str,
        part_of: Dict[str, int],
        chan_part: Dict[int, int],
        queues: List[CalendarQueue],
        runqs: List[Deque],
        nows: List[float],
    ) -> int:
        """Place a process registered mid-run into a partition.

        A late arrival (e.g. a callback registering a monitor) joins the
        partition it shares a channel with; with no shared channel it
        becomes a new singleton partition.  Spanning two existing
        partitions would couple them — that graph cannot be batch
        advanced, so it is a hard error rather than a silent trace
        divergence.
        """
        handle = self._handles[name]
        owner = handle.owner if handle.owner is not None else handle
        channels = endpoint_channels(owner)
        pids = {
            chan_part[id(c)] for c in channels if id(c) in chan_part
        }
        if len(pids) > 1:
            raise SimulationError(
                f"process {name} registered mid-run spans partitions "
                f"{sorted(pids)}; partitioned execution requires "
                "independent subnetworks"
            )
        if pids:
            pid = pids.pop()
        else:
            pid = len(queues)
            queues.append(CalendarQueue())
            runqs.append(deque())
            nows.append(self._now)
        part_of[name] = pid
        for channel in channels:
            chan_part.setdefault(id(channel), pid)
        return pid

    def _burst(
        self,
        cal: CalendarQueue,
        runq: Deque,
        barrier_time: float,
        barrier_seq: Optional[int],
        budget: int,
    ) -> int:
        """Fire one partition's events up to the synchronisation point.

        Fires every pending entry with ``time <= barrier_time`` (horizon
        barrier, ``barrier_seq is None``) or ``(time, seq) <
        (barrier_time, barrier_seq)`` (callback barrier) — exactly the
        entries the interleaved engine would have fired before the
        barrier event.  Returns the number of events fired; stops early
        when ``budget`` (>= 0) is exhausted.
        """
        jump = _JUMP_TABLE
        advance = self._advance
        reattempt = self._reattempt
        events = 0
        while cal or runq:
            if runq:
                entry = runq[0]
                if cal:
                    top = cal.peek()
                    if top[0] < entry[0] or (
                        top[0] == entry[0] and top[1] < entry[1]
                    ):
                        entry = top
                        from_runq = False
                    else:
                        from_runq = True
                else:
                    from_runq = True
            else:
                entry = cal.peek()
                from_runq = False
            time = entry[0]
            if time > barrier_time or (
                barrier_seq is not None
                and time == barrier_time
                and entry[1] >= barrier_seq
            ):
                break
            if events == budget:
                break
            self._now = time
            events += 1
            if from_runq:
                runq.popleft()
                handle = entry[2]
                handle.wake_scheduled = False
                operation = handle.pending_op
                if operation is not None:
                    reattempt(handle, operation)
            else:
                cal.pop()
                event = entry[2]
                cls = event.__class__
                if cls is ResumeEvent:
                    advance(event.handle, None)
                else:
                    jump[cls](self, event)
        return events

    def step(self) -> bool:
        """Process a single event; returns False when none are pending."""
        heap = self._heap
        runq = self._runq
        if runq and (
            not heap
            or runq[0][0] < heap[0][0]
            or (runq[0][0] == heap[0][0] and runq[0][1] < heap[0][1])
        ):
            time, _seq, handle = runq.popleft()
            self._now = time
            self._event_count += 1
            self._fire_wake(handle)
            return True
        if not heap:
            return False
        time, _seq, event = heapq.heappop(heap)
        self._now = time
        self._event_count += 1
        _JUMP_TABLE[event.__class__](self, event)
        return True

    # -- event firing ---------------------------------------------------------

    def _fire_start(self, event: StartEvent) -> None:
        handle = event.handle
        if handle.state is ProcessState.KILLED:
            return
        if self._hook is not None:
            self._hook(self._now, handle.name, "start", None)
        self._advance(handle, None)

    def _fire_resume(self, event: ResumeEvent) -> None:
        self._advance(event.handle, None)

    def _fire_retry(self, event: RetryEvent) -> None:
        self._reattempt(event.handle, event.operation)

    def _fire_callback(self, event: CallbackEvent) -> None:
        event.action()

    def _fire_wake(self, handle: ProcessHandle) -> None:
        """Fire one direct-handoff wake from the run queue."""
        handle.wake_scheduled = False
        operation = handle.pending_op
        if operation is not None:
            self._reattempt(handle, operation)

    def _reattempt(self, handle: ProcessHandle, operation: Operation) -> None:
        """Re-poll a blocked operation; resume the process on success.

        Re-blocking (status still ``empty``/``full``/``wait``) does not
        re-emit a block transition or restart the blocked-span clock: the
        process never unblocked, it was merely re-polled.
        """
        state = handle.state
        if state is _DONE or state is _KILLED:
            return
        cls = operation.__class__
        if cls is Read:
            status, payload = operation.poll(operation.index, self._now)
            if status == "ok":
                if self._observed:
                    self._note_resume(handle)
                self._advance(handle, payload)
            elif status == "wait":
                handle.state = _BLOCKED_READ
                handle.pending_op = operation
                self._push_event(payload, RetryEvent(handle, operation))
            elif status == "empty":
                handle.state = _BLOCKED_READ
                handle.pending_op = operation
                operation.channel.park_reader(operation.index, handle)
            else:  # pragma: no cover - channel contract violation
                raise ProtocolError(f"bad poll_read status {status!r}")
        elif cls is Write:
            status, _ = operation.poll(
                operation.index, operation.token, self._now
            )
            if status == "ok":
                if self._observed:
                    self._note_resume(handle)
                self._advance(handle, None)
            elif status == "full":
                handle.state = _BLOCKED_WRITE
                handle.pending_op = operation
                operation.channel.park_writer(operation.index, handle)
            else:  # pragma: no cover - channel contract violation
                raise ProtocolError(f"bad poll_write status {status!r}")

    def _note_resume(self, handle: ProcessHandle) -> None:
        """Telemetry for a blocked operation completing (cold path)."""
        if self._hook is not None:
            self._hook(self._now, handle.name, "resume", None)
        if self._m_block is not None:
            self._m_block.observe(self._now - handle.block_start)

    def _note_block(
        self, handle: ProcessHandle, kind: str, channel_name: str
    ) -> None:
        """Telemetry for a process entering a blocked state (cold path)."""
        if self._hook is not None:
            self._hook(self._now, handle.name, kind, channel_name)
        if self._m_block is not None:
            handle.block_start = self._now
            self._m_parks.inc()

    # -- process driving ------------------------------------------------------

    def _advance(self, handle: ProcessHandle, value: Any) -> None:
        """Resume the generator with ``value`` and run it until it blocks.

        Consecutive immediately-satisfiable operations (a read with a
        token ready, a write into free space) complete in this tight loop
        rather than through mutual recursion — one Python frame per
        resumption instead of three, the single hottest path in the
        engine.  Operation dispatch is by concrete class (the operation
        types are final), ordered by observed frequency.
        """
        state = handle.state
        if state is _DONE or state is _KILLED:
            return
        generator_send = handle.generator.send
        killed = _KILLED
        observed = self._observed
        now = self._now
        # ``handle.state`` is deliberately *not* set to RUNNING on every
        # loop turn: no observer can see the intermediate state (hooks and
        # stats read it only at block/done edges, which all store an
        # explicit state below), and the per-resumption store is
        # measurable.  The killed check still works — ``kill`` writes
        # KILLED into the handle whether or not the generator is live.
        while True:
            try:
                operation = generator_send(value)
            except StopIteration:
                handle.state = _DONE
                if observed and self._hook is not None:
                    self._hook(now, handle.name, "done", None)
                return
            if handle.state is killed:
                # Killed from inside its own advancement (self-kill
                # hook); drop the yielded operation.
                return
            cls = operation.__class__
            if cls is Read:
                status, payload = operation.poll(operation.index, now)
                if status == "ok":
                    value = payload
                    continue
                handle.state = _BLOCKED_READ
                handle.pending_op = operation
                if observed:
                    self._note_block(
                        handle, "block_read", operation.channel.name
                    )
                if status == "wait":
                    self._push_event(payload, RetryEvent(handle, operation))
                elif status == "empty":
                    operation.channel.park_reader(operation.index, handle)
                else:  # pragma: no cover - channel contract violation
                    raise ProtocolError(f"bad poll_read status {status!r}")
                return
            if cls is Write:
                status, _ = operation.poll(
                    operation.index, operation.token, now
                )
                if status == "ok":
                    value = None
                    continue
                if status == "full":
                    handle.state = _BLOCKED_WRITE
                    handle.pending_op = operation
                    if observed:
                        self._note_block(
                            handle, "block_write", operation.channel.name
                        )
                    operation.channel.park_writer(operation.index, handle)
                else:  # pragma: no cover - channel contract violation
                    raise ProtocolError(f"bad poll_write status {status!r}")
                return
            if cls is Delay:
                # Inlined _push_event: Delay validates duration >= 0 at
                # construction, so the target instant can never precede
                # the current one — no past-scheduling check needed.
                handle.state = _DELAYED
                handle.pending_op = operation
                if observed and self._hook is not None:
                    self._hook(
                        now, handle.name, "compute", operation.duration
                    )
                self._sequence += 1
                entry = (
                    now + operation.duration,
                    self._sequence,
                    handle.resume_event,
                )
                cal = self._cal
                if cal is None:
                    _heappush(self._heap, entry)
                else:
                    cal.push(entry)
                return
            if cls is Halt:
                handle.state = _DONE
                handle.generator.close()
                if observed and self._hook is not None:
                    self._hook(self._now, handle.name, "done", None)
                return
            raise ProtocolError(
                f"process {handle.name} yielded unknown operation "
                f"{operation!r}"
            )

    def _advance_stepped(self, handle: ProcessHandle, value: Any) -> None:
        """Stepped-mode twin of :meth:`_advance`.

        Identical control flow with ``generator.send`` replaced by the
        compiled ``step(value, now)`` call; a ``None`` return is the
        ``StopIteration`` analogue.  Kept as a separate method (selected
        once at construction) so neither mode pays a per-resumption mode
        test.
        """
        state = handle.state
        if state is _DONE or state is _KILLED:
            return
        stepfn = handle.stepfn
        killed = _KILLED
        observed = self._observed
        now = self._now
        while True:
            operation = stepfn(value, now)
            if operation is None:
                handle.state = _DONE
                if observed and self._hook is not None:
                    self._hook(now, handle.name, "done", None)
                return
            if handle.state is killed:
                return
            cls = operation.__class__
            if cls is Read:
                status, payload = operation.poll(operation.index, now)
                if status == "ok":
                    value = payload
                    continue
                handle.state = _BLOCKED_READ
                handle.pending_op = operation
                if observed:
                    self._note_block(
                        handle, "block_read", operation.channel.name
                    )
                if status == "wait":
                    self._push_event(payload, RetryEvent(handle, operation))
                elif status == "empty":
                    operation.channel.park_reader(operation.index, handle)
                else:  # pragma: no cover - channel contract violation
                    raise ProtocolError(f"bad poll_read status {status!r}")
                return
            if cls is Write:
                status, _ = operation.poll(
                    operation.index, operation.token, now
                )
                if status == "ok":
                    value = None
                    continue
                if status == "full":
                    handle.state = _BLOCKED_WRITE
                    handle.pending_op = operation
                    if observed:
                        self._note_block(
                            handle, "block_write", operation.channel.name
                        )
                    operation.channel.park_writer(operation.index, handle)
                else:  # pragma: no cover - channel contract violation
                    raise ProtocolError(f"bad poll_write status {status!r}")
                return
            if cls is Delay:
                handle.state = _DELAYED
                handle.pending_op = operation
                if observed and self._hook is not None:
                    self._hook(
                        now, handle.name, "compute", operation.duration
                    )
                self._sequence += 1
                entry = (
                    now + operation.duration,
                    self._sequence,
                    handle.resume_event,
                )
                cal = self._cal
                if cal is None:
                    _heappush(self._heap, entry)
                else:
                    cal.push(entry)
                return
            if cls is Halt:
                handle.state = _DONE
                generator = handle.generator
                if generator is not None:
                    generator.close()
                if observed and self._hook is not None:
                    self._hook(self._now, handle.name, "done", None)
                return
            raise ProtocolError(
                f"process {handle.name} yielded unknown operation "
                f"{operation!r}"
            )

    def retry(self, handle: ProcessHandle) -> None:
        """Queue a parked process's pending operation for re-attempt *now*.

        Channels call this when their state changes (a read freed space, a
        write added a token).  The wake goes onto the same-time run queue —
        the direct-handoff fast path — so the waker finishes its own event
        first and no heap traffic occurs.  Sequence numbers are drawn from
        the shared counter, keeping the total event order identical to an
        engine that schedules the retry through the heap.
        """
        state = handle.state
        if (
            state is _DONE
            or state is _KILLED
            or handle.wake_scheduled
            or handle.pending_op is None
        ):
            return
        handle.wake_scheduled = True
        if self._m_wakes is not None:
            self._m_wakes.inc()
        sequence = self._sequence + 1
        self._sequence = sequence
        self._runq.append((self._now, sequence, handle))


#: Hot-path aliases for the enum members: module globals resolve faster
#: than the two-step ``ProcessState.X`` attribute chain.
_DONE = ProcessState.DONE
_KILLED = ProcessState.KILLED
_RUNNING = ProcessState.RUNNING
_BLOCKED_READ = ProcessState.BLOCKED_READ
_BLOCKED_WRITE = ProcessState.BLOCKED_WRITE
_DELAYED = ProcessState.DELAYED

#: Jump table: event record class -> bound firing method.  Dict dispatch on
#: the concrete class avoids an isinstance ladder in the hot loop.
_JUMP_TABLE = {
    StartEvent: Simulator._fire_start,
    ResumeEvent: Simulator._fire_resume,
    RetryEvent: Simulator._fire_retry,
    CallbackEvent: Simulator._fire_callback,
}

#: Hand the optional compiled kernel the classes its drive loop
#: dispatches on (``None`` when the extension is absent or disabled via
#: ``REPRO_PURE_KERNEL=1`` — the pure loops then run unconditionally).
_kernel.configure(
    {
        "ResumeEvent": ResumeEvent,
        "RetryEvent": RetryEvent,
        "Read": Read,
        "Write": Write,
        "Delay": Delay,
        "Halt": Halt,
        "DONE": _DONE,
        "KILLED": _KILLED,
        "BLOCKED_READ": _BLOCKED_READ,
        "BLOCKED_WRITE": _BLOCKED_WRITE,
        "DELAYED": _DELAYED,
        "ProtocolError": ProtocolError,
        "SimulationError": SimulationError,
    }
)
