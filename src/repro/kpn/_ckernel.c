/* Optional compiled drive kernel for the stepped execution core.
 *
 * A hand-written CPython extension implementing the engine's hottest
 * loop — `Simulator._drive_heap_stepped` — in C: event selection
 * (run-queue front vs. heap top on `(time, sequence)`), the inlined
 * reattempt path for direct-handoff wakes, and the fused step loop
 * driving compiled step machines.  Every Python-visible side effect
 * (poll calls, state stores, sequence-number draws, heap entries)
 * happens in exactly the order of the pure-Python loop, so traces are
 * byte-identical; the golden-trace suite pins this.
 *
 * Scope is deliberately narrow: the kernel only runs for unobserved
 * simulations (no transition hook, no metrics registry) in stepped
 * mode on the plain-heap scheduler path.  Anything else — including a
 * callback enabling observation mid-run — makes the kernel return to
 * Python with a `bail` flag and the pure loop finishes the run.  The
 * pure-Python fallback is always present; this module is an optional
 * accelerator built with `REPRO_BUILD_CKERNEL=1` (see docs/API.md).
 *
 * The module is configured once at import time by
 * `repro.kpn.kernel.configure()`, which hands over the engine's event
 * and operation classes plus the `ProcessState` members so identity
 * checks (`state is DONE`, `type(op) is Read`) compile to pointer
 * compares, exactly like the pure loop's `is` tests.
 */

#define PY_SSIZE_T_CLEAN
#include <Python.h>

/* ---- configured engine objects ---------------------------------------- */

typedef struct {
    /* event record classes */
    PyObject *ResumeEvent;
    PyObject *RetryEvent;
    /* operation classes */
    PyObject *Read;
    PyObject *Write;
    PyObject *Delay;
    PyObject *Halt;
    /* ProcessState members */
    PyObject *DONE;
    PyObject *KILLED;
    PyObject *BLOCKED_READ;
    PyObject *BLOCKED_WRITE;
    PyObject *DELAYED;
    /* exception classes */
    PyObject *ProtocolError;
    PyObject *SimulationError;
    int ready;
} EngineRefs;

static EngineRefs refs = {0};

/* interned attribute names */
static PyObject *s_now, *s_sequence, *s_observed, *s_event_count;
static PyObject *s_state, *s_pending_op, *s_wake_scheduled, *s_stepfn;
static PyObject *s_generator, *s_resume_event, *s_name;
static PyObject *s_poll, *s_index, *s_token, *s_channel, *s_retry_at;
static PyObject *s_duration, *s_park_reader, *s_park_writer;
static PyObject *s_popleft, *s_close, *s_dispatch, *s_handle;

static int
intern_names(void)
{
#define INTERN(var, text)                                                  \
    do {                                                                   \
        var = PyUnicode_InternFromString(text);                            \
        if (var == NULL)                                                   \
            return -1;                                                     \
    } while (0)
    INTERN(s_now, "_now");
    INTERN(s_sequence, "_sequence");
    INTERN(s_observed, "_observed");
    INTERN(s_event_count, "_event_count");
    INTERN(s_state, "state");
    INTERN(s_pending_op, "pending_op");
    INTERN(s_wake_scheduled, "wake_scheduled");
    INTERN(s_stepfn, "stepfn");
    INTERN(s_generator, "generator");
    INTERN(s_resume_event, "resume_event");
    INTERN(s_name, "name");
    INTERN(s_poll, "poll");
    INTERN(s_index, "index");
    INTERN(s_token, "token");
    INTERN(s_channel, "channel");
    INTERN(s_retry_at, "retry_at");
    INTERN(s_duration, "duration");
    INTERN(s_park_reader, "park_reader");
    INTERN(s_park_writer, "park_writer");
    INTERN(s_popleft, "popleft");
    INTERN(s_close, "close");
    INTERN(s_dispatch, "_dispatch_event");
    INTERN(s_handle, "handle");
#undef INTERN
    return 0;
}

/* ---- (time, sequence) heap on a PyList -------------------------------- */

/* Strict less-than on the (time, sequence) prefix of two event entries.
 * Returns 1/0, or -1 on conversion error. */
static int
entry_lt(PyObject *a, PyObject *b)
{
    double ta = PyFloat_AsDouble(PyTuple_GET_ITEM(a, 0));
    if (ta == -1.0 && PyErr_Occurred())
        return -1;
    double tb = PyFloat_AsDouble(PyTuple_GET_ITEM(b, 0));
    if (tb == -1.0 && PyErr_Occurred())
        return -1;
    if (ta != tb)
        return ta < tb;
    long long sa = PyLong_AsLongLong(PyTuple_GET_ITEM(a, 1));
    if (sa == -1 && PyErr_Occurred())
        return -1;
    long long sb = PyLong_AsLongLong(PyTuple_GET_ITEM(b, 1));
    if (sb == -1 && PyErr_Occurred())
        return -1;
    return sa < sb;
}

/* heapq._siftdown: move heap[pos] toward the root. */
static int
heap_siftdown(PyObject *heap, Py_ssize_t startpos, Py_ssize_t pos)
{
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    while (pos > startpos) {
        Py_ssize_t parentpos = (pos - 1) >> 1;
        PyObject *parent = PyList_GET_ITEM(heap, parentpos);
        int lt = entry_lt(newitem, parent);
        if (lt < 0) {
            Py_DECREF(newitem);
            return -1;
        }
        if (!lt)
            break;
        Py_INCREF(parent);
        PyList_SetItem(heap, pos, parent);
        pos = parentpos;
    }
    PyList_SetItem(heap, pos, newitem);
    return 0;
}

/* heapq._siftup: move the item at pos down to a leaf, then sift down. */
static int
heap_siftup(PyObject *heap, Py_ssize_t pos)
{
    Py_ssize_t endpos = PyList_GET_SIZE(heap);
    Py_ssize_t startpos = pos;
    PyObject *newitem = PyList_GET_ITEM(heap, pos);
    Py_INCREF(newitem);
    Py_ssize_t childpos = 2 * pos + 1;
    while (childpos < endpos) {
        Py_ssize_t rightpos = childpos + 1;
        if (rightpos < endpos) {
            int lt = entry_lt(PyList_GET_ITEM(heap, childpos),
                              PyList_GET_ITEM(heap, rightpos));
            if (lt < 0) {
                Py_DECREF(newitem);
                return -1;
            }
            if (!lt)
                childpos = rightpos;
        }
        PyObject *child = PyList_GET_ITEM(heap, childpos);
        Py_INCREF(child);
        PyList_SetItem(heap, pos, child);
        pos = childpos;
        childpos = 2 * pos + 1;
    }
    PyList_SetItem(heap, pos, newitem);
    return heap_siftdown(heap, startpos, pos);
}

/* heapq.heappush equivalent.  Borrows `item`. */
static int
heap_push(PyObject *heap, PyObject *item)
{
    if (PyList_Append(heap, item) < 0)
        return -1;
    return heap_siftdown(heap, 0, PyList_GET_SIZE(heap) - 1);
}

/* heapq.heappop equivalent.  Returns a new reference. */
static PyObject *
heap_pop(PyObject *heap)
{
    Py_ssize_t n = PyList_GET_SIZE(heap) - 1;
    PyObject *last = PyList_GET_ITEM(heap, n);
    Py_INCREF(last);
    if (PyList_SetSlice(heap, n, n + 1, NULL) < 0) {
        Py_DECREF(last);
        return NULL;
    }
    if (n == 0)
        return last;
    PyObject *returnitem = PyList_GET_ITEM(heap, 0);
    Py_INCREF(returnitem);
    PyList_SetItem(heap, 0, last); /* steals last */
    if (heap_siftup(heap, 0) < 0) {
        Py_DECREF(returnitem);
        return NULL;
    }
    return returnitem;
}

/* ---- helpers ----------------------------------------------------------- */

/* Draw the next sequence number from sim._sequence; returns the new
 * PyLong (new reference) with sim._sequence already updated. */
static PyObject *
draw_sequence(PyObject *sim)
{
    PyObject *seq = PyObject_GetAttr(sim, s_sequence);
    if (seq == NULL)
        return NULL;
    long long value = PyLong_AsLongLong(seq);
    Py_DECREF(seq);
    if (value == -1 && PyErr_Occurred())
        return NULL;
    PyObject *next = PyLong_FromLongLong(value + 1);
    if (next == NULL)
        return NULL;
    if (PyObject_SetAttr(sim, s_sequence, next) < 0) {
        Py_DECREF(next);
        return NULL;
    }
    return next;
}

/* Simulator._push_event(time, RetryEvent(handle, operation)) for the
 * heap drive (self._cal is None by construction).  `time_obj` is
 * borrowed. */
static int
push_retry(PyObject *sim, PyObject *heap, PyObject *time_obj, double now,
           PyObject *handle, PyObject *operation)
{
    double t = PyFloat_AsDouble(time_obj);
    if (t == -1.0 && PyErr_Occurred())
        return -1;
    if (t < now - 1e-12) {
        PyErr_Format(refs.SimulationError,
                     "cannot schedule at %R before now (%f)", time_obj, now);
        return -1;
    }
    PyObject *event = PyObject_CallFunctionObjArgs(refs.RetryEvent, handle,
                                                   operation, NULL);
    if (event == NULL)
        return -1;
    PyObject *seq = draw_sequence(sim);
    if (seq == NULL) {
        Py_DECREF(event);
        return -1;
    }
    PyObject *when;
    if (t >= now) {
        when = time_obj;
        Py_INCREF(when);
    }
    else {
        when = PyFloat_FromDouble(now);
        if (when == NULL) {
            Py_DECREF(seq);
            Py_DECREF(event);
            return -1;
        }
    }
    PyObject *entry = PyTuple_New(3);
    if (entry == NULL) {
        Py_DECREF(when);
        Py_DECREF(seq);
        Py_DECREF(event);
        return -1;
    }
    PyTuple_SET_ITEM(entry, 0, when);
    PyTuple_SET_ITEM(entry, 1, seq);
    PyTuple_SET_ITEM(entry, 2, event);
    int rc = heap_push(heap, entry);
    Py_DECREF(entry);
    return rc;
}

/* Park a blocked operation: state/pending_op stores plus the channel's
 * park_reader/park_writer call.  `park_name` selects the entry point. */
static int
park_blocked(PyObject *handle, PyObject *operation, PyObject *blocked_state,
             PyObject *park_name)
{
    if (PyObject_SetAttr(handle, s_state, blocked_state) < 0)
        return -1;
    if (PyObject_SetAttr(handle, s_pending_op, operation) < 0)
        return -1;
    PyObject *channel = PyObject_GetAttr(operation, s_channel);
    if (channel == NULL)
        return -1;
    PyObject *index = PyObject_GetAttr(operation, s_index);
    if (index == NULL) {
        Py_DECREF(channel);
        return -1;
    }
    PyObject *res = PyObject_CallMethodObjArgs(channel, park_name, index,
                                               handle, NULL);
    Py_DECREF(index);
    Py_DECREF(channel);
    if (res == NULL)
        return -1;
    Py_DECREF(res);
    return 0;
}

static int
status_is(PyObject *status, const char *text)
{
    return PyUnicode_Check(status) &&
           PyUnicode_CompareWithASCIIString(status, text) == 0;
}

/* ---- the drive loop ---------------------------------------------------- */

static PyObject *
drive(PyObject *module, PyObject *args)
{
    PyObject *sim;
    double time_limit;
    long long event_limit;
    if (!PyArg_ParseTuple(args, "OdL", &sim, &time_limit, &event_limit))
        return NULL;
    if (!refs.ready) {
        PyErr_SetString(PyExc_RuntimeError, "_ckernel not configured");
        return NULL;
    }
    PyObject *heap = PyObject_GetAttrString(sim, "_heap");
    if (heap == NULL || !PyList_Check(heap)) {
        Py_XDECREF(heap);
        if (!PyErr_Occurred())
            PyErr_SetString(PyExc_TypeError, "sim._heap is not a list");
        return NULL;
    }
    PyObject *runq = PyObject_GetAttrString(sim, "_runq");
    if (runq == NULL) {
        Py_DECREF(heap);
        return NULL;
    }

    long long events = 0;
    int halted = 0;
    int bail = 0;
    int failed = 0;

    while (1) {
        Py_ssize_t runq_len = PyObject_Size(runq);
        if (runq_len < 0) {
            failed = 1;
            break;
        }
        Py_ssize_t heap_len = PyList_GET_SIZE(heap);
        if (runq_len == 0 && heap_len == 0)
            break;

        /* -- event selection: smallest (time, sequence) of runq front
         *    and heap top; ties go to the runq (sequences are unique,
         *    matching the pure loop's strict-less heap test). */
        PyObject *entry; /* owned */
        int from_runq;
        if (runq_len > 0) {
            entry = PySequence_GetItem(runq, 0);
            if (entry == NULL) {
                failed = 1;
                break;
            }
            from_runq = 1;
            if (heap_len > 0) {
                PyObject *top = PyList_GET_ITEM(heap, 0);
                int lt = entry_lt(top, entry);
                if (lt < 0) {
                    Py_DECREF(entry);
                    failed = 1;
                    break;
                }
                if (lt) {
                    Py_DECREF(entry);
                    entry = top;
                    Py_INCREF(entry);
                    from_runq = 0;
                }
            }
        }
        else {
            entry = PyList_GET_ITEM(heap, 0);
            Py_INCREF(entry);
            from_runq = 0;
        }

        PyObject *time_obj = PyTuple_GET_ITEM(entry, 0); /* borrowed */
        double now = PyFloat_AsDouble(time_obj);
        if (now == -1.0 && PyErr_Occurred()) {
            Py_DECREF(entry);
            failed = 1;
            break;
        }
        if (now > time_limit) {
            Py_DECREF(entry);
            break;
        }
        if (PyObject_SetAttr(sim, s_now, time_obj) < 0) {
            Py_DECREF(entry);
            failed = 1;
            break;
        }
        events++;

        PyObject *handle = NULL; /* owned; non-NULL => run the step loop */
        PyObject *value = NULL;  /* owned */

        if (from_runq) {
            /* Direct-handoff wake: inlined _reattempt. */
            PyObject *gone = PyObject_CallMethodNoArgs(runq, s_popleft);
            if (gone == NULL) {
                Py_DECREF(entry);
                failed = 1;
                break;
            }
            Py_DECREF(gone);
            PyObject *waked = PyTuple_GET_ITEM(entry, 2); /* borrowed */
            if (PyObject_SetAttr(waked, s_wake_scheduled, Py_False) < 0) {
                Py_DECREF(entry);
                failed = 1;
                break;
            }
            PyObject *operation = PyObject_GetAttr(waked, s_pending_op);
            PyObject *state = operation == NULL
                                  ? NULL
                                  : PyObject_GetAttr(waked, s_state);
            if (state == NULL) {
                Py_XDECREF(operation);
                Py_DECREF(entry);
                failed = 1;
                break;
            }
            if (operation != Py_None && state != refs.DONE &&
                state != refs.KILLED) {
                PyObject *ocls = (PyObject *)Py_TYPE(operation);
                PyObject *poll = PyObject_GetAttr(operation, s_poll);
                PyObject *index =
                    poll == NULL ? NULL
                                 : PyObject_GetAttr(operation, s_index);
                if (index == NULL) {
                    Py_XDECREF(poll);
                    goto wake_failed;
                }
                if (ocls == refs.Read) {
                    PyObject *res = PyObject_CallFunctionObjArgs(
                        poll, index, time_obj, NULL);
                    if (res == NULL || !PyTuple_Check(res) ||
                        PyTuple_GET_SIZE(res) != 2) {
                        if (res != NULL && !PyErr_Occurred())
                            PyErr_SetString(refs.ProtocolError,
                                            "malformed poll result");
                        Py_XDECREF(res);
                        goto wake_poll_failed;
                    }
                    PyObject *st = PyTuple_GET_ITEM(res, 0);
                    PyObject *payload = PyTuple_GET_ITEM(res, 1);
                    if (status_is(st, "ok")) {
                        handle = waked;
                        Py_INCREF(handle);
                        value = payload;
                        Py_INCREF(value);
                    }
                    else if (status_is(st, "wait")) {
                        if (PyObject_SetAttr(waked, s_state,
                                             refs.BLOCKED_READ) < 0 ||
                            PyObject_SetAttr(waked, s_pending_op,
                                             operation) < 0 ||
                            push_retry(sim, heap, payload, now, waked,
                                       operation) < 0) {
                            Py_DECREF(res);
                            goto wake_poll_failed;
                        }
                    }
                    else if (status_is(st, "empty")) {
                        if (PyObject_SetAttr(waked, s_pending_op,
                                             operation) < 0 ||
                            park_blocked(waked, operation,
                                         refs.BLOCKED_READ,
                                         s_park_reader) < 0) {
                            Py_DECREF(res);
                            goto wake_poll_failed;
                        }
                    }
                    else {
                        PyErr_Format(refs.ProtocolError,
                                     "bad poll_read status %R", st);
                        Py_DECREF(res);
                        goto wake_poll_failed;
                    }
                    Py_DECREF(res);
                }
                else if (ocls == refs.Write) {
                    PyObject *token = PyObject_GetAttr(operation, s_token);
                    if (token == NULL)
                        goto wake_poll_failed;
                    PyObject *res = PyObject_CallFunctionObjArgs(
                        poll, index, token, time_obj, NULL);
                    Py_DECREF(token);
                    if (res == NULL || !PyTuple_Check(res) ||
                        PyTuple_GET_SIZE(res) != 2) {
                        if (res != NULL && !PyErr_Occurred())
                            PyErr_SetString(refs.ProtocolError,
                                            "malformed poll result");
                        Py_XDECREF(res);
                        goto wake_poll_failed;
                    }
                    PyObject *st = PyTuple_GET_ITEM(res, 0);
                    if (status_is(st, "ok")) {
                        handle = waked;
                        Py_INCREF(handle);
                        value = Py_None;
                        Py_INCREF(value);
                    }
                    else if (status_is(st, "full")) {
                        if (PyObject_SetAttr(waked, s_pending_op,
                                             operation) < 0 ||
                            park_blocked(waked, operation,
                                         refs.BLOCKED_WRITE,
                                         s_park_writer) < 0) {
                            Py_DECREF(res);
                            goto wake_poll_failed;
                        }
                    }
                    else {
                        PyErr_Format(refs.ProtocolError,
                                     "bad poll_write status %R", st);
                        Py_DECREF(res);
                        goto wake_poll_failed;
                    }
                    Py_DECREF(res);
                }
                Py_DECREF(poll);
                Py_DECREF(index);
                goto wake_done;
            wake_poll_failed:
                Py_DECREF(poll);
                Py_DECREF(index);
            wake_failed:
                Py_DECREF(operation);
                Py_DECREF(state);
                Py_DECREF(entry);
                failed = 1;
                break;
            }
        wake_done:
            Py_XDECREF(operation);
            Py_XDECREF(state);
            if (failed)
                break;
        }
        else {
            PyObject *popped = heap_pop(heap);
            if (popped == NULL) {
                Py_DECREF(entry);
                failed = 1;
                break;
            }
            PyObject *event = PyTuple_GET_ITEM(popped, 2); /* borrowed */
            if ((PyObject *)Py_TYPE(event) == refs.ResumeEvent) {
                PyObject *resumed = PyObject_GetAttr(event, s_handle);
                PyObject *state =
                    resumed == NULL ? NULL
                                    : PyObject_GetAttr(resumed, s_state);
                if (state == NULL) {
                    Py_XDECREF(resumed);
                    Py_DECREF(popped);
                    Py_DECREF(entry);
                    failed = 1;
                    break;
                }
                if (state != refs.DONE && state != refs.KILLED) {
                    handle = resumed; /* transfer */
                    value = Py_None;
                    Py_INCREF(value);
                }
                else {
                    Py_DECREF(resumed);
                }
                Py_DECREF(state);
            }
            else {
                /* Cold events (Start/Retry/Callback) dispatch through
                 * the Python jump table; a callback may enable
                 * observation, which the kernel cannot honour — hand
                 * the rest of the run back to the pure loop. */
                PyObject *res = PyObject_CallMethodObjArgs(
                    sim, s_dispatch, event, NULL);
                if (res == NULL) {
                    Py_DECREF(popped);
                    Py_DECREF(entry);
                    failed = 1;
                    break;
                }
                Py_DECREF(res);
                PyObject *observed = PyObject_GetAttr(sim, s_observed);
                if (observed == NULL) {
                    Py_DECREF(popped);
                    Py_DECREF(entry);
                    failed = 1;
                    break;
                }
                int hot = PyObject_IsTrue(observed);
                Py_DECREF(observed);
                if (hot < 0) {
                    Py_DECREF(popped);
                    Py_DECREF(entry);
                    failed = 1;
                    break;
                }
                if (hot) {
                    Py_DECREF(popped);
                    Py_DECREF(entry);
                    bail = 1;
                    if (events == event_limit)
                        halted = 1;
                    break;
                }
            }
            Py_DECREF(popped);
        }

        /* -- fused step loop -------------------------------------- */
        if (handle != NULL) {
            PyObject *stepfn = PyObject_GetAttr(handle, s_stepfn);
            PyObject *generator =
                stepfn == NULL ? NULL
                               : PyObject_GetAttr(handle, s_generator);
            if (generator == NULL) {
                Py_XDECREF(stepfn);
                Py_DECREF(handle);
                Py_XDECREF(value);
                Py_DECREF(entry);
                failed = 1;
                break;
            }
            int trusted = (generator == Py_None);
            while (1) {
                PyObject *op = PyObject_CallFunctionObjArgs(
                    stepfn, value, time_obj, NULL);
                Py_CLEAR(value);
                if (op == NULL) {
                    failed = 1;
                    break;
                }
                if (op == Py_None) {
                    Py_DECREF(op);
                    if (PyObject_SetAttr(handle, s_state, refs.DONE) < 0)
                        failed = 1;
                    break;
                }
                PyObject *state = PyObject_GetAttr(handle, s_state);
                if (state == NULL) {
                    Py_DECREF(op);
                    failed = 1;
                    break;
                }
                if (state == refs.KILLED) {
                    Py_DECREF(state);
                    Py_DECREF(op);
                    break;
                }
                Py_DECREF(state);
                PyObject *ocls = (PyObject *)Py_TYPE(op);
                if (ocls == refs.Read) {
                    if (trusted) {
                        /* Self-polling machine: the poll already failed
                         * idempotently; park directly from retry_at. */
                        PyObject *retry_at =
                            PyObject_GetAttr(op, s_retry_at);
                        if (retry_at == NULL) {
                            Py_DECREF(op);
                            failed = 1;
                            break;
                        }
                        if (retry_at == Py_None) {
                            if (park_blocked(handle, op, refs.BLOCKED_READ,
                                             s_park_reader) < 0)
                                failed = 1;
                        }
                        else {
                            if (PyObject_SetAttr(handle, s_state,
                                                 refs.BLOCKED_READ) < 0 ||
                                PyObject_SetAttr(handle, s_pending_op,
                                                 op) < 0 ||
                                push_retry(sim, heap, retry_at, now,
                                           handle, op) < 0)
                                failed = 1;
                        }
                        Py_DECREF(retry_at);
                        Py_DECREF(op);
                        break;
                    }
                    PyObject *poll = PyObject_GetAttr(op, s_poll);
                    PyObject *index =
                        poll == NULL ? NULL
                                     : PyObject_GetAttr(op, s_index);
                    PyObject *res =
                        index == NULL
                            ? NULL
                            : PyObject_CallFunctionObjArgs(poll, index,
                                                           time_obj, NULL);
                    Py_XDECREF(poll);
                    Py_XDECREF(index);
                    if (res == NULL || !PyTuple_Check(res) ||
                        PyTuple_GET_SIZE(res) != 2) {
                        if (res != NULL && !PyErr_Occurred())
                            PyErr_SetString(refs.ProtocolError,
                                            "malformed poll result");
                        Py_XDECREF(res);
                        Py_DECREF(op);
                        failed = 1;
                        break;
                    }
                    PyObject *st = PyTuple_GET_ITEM(res, 0);
                    if (status_is(st, "ok")) {
                        value = PyTuple_GET_ITEM(res, 1);
                        Py_INCREF(value);
                        Py_DECREF(res);
                        Py_DECREF(op);
                        continue;
                    }
                    if (status_is(st, "wait")) {
                        if (PyObject_SetAttr(handle, s_state,
                                             refs.BLOCKED_READ) < 0 ||
                            PyObject_SetAttr(handle, s_pending_op, op) < 0 ||
                            push_retry(sim, heap, PyTuple_GET_ITEM(res, 1),
                                       now, handle, op) < 0)
                            failed = 1;
                    }
                    else if (status_is(st, "empty")) {
                        if (park_blocked(handle, op, refs.BLOCKED_READ,
                                         s_park_reader) < 0)
                            failed = 1;
                    }
                    else {
                        PyErr_Format(refs.ProtocolError,
                                     "bad poll_read status %R", st);
                        failed = 1;
                    }
                    Py_DECREF(res);
                    Py_DECREF(op);
                    break;
                }
                if (ocls == refs.Write) {
                    if (trusted) {
                        if (park_blocked(handle, op, refs.BLOCKED_WRITE,
                                         s_park_writer) < 0)
                            failed = 1;
                        Py_DECREF(op);
                        break;
                    }
                    PyObject *poll = PyObject_GetAttr(op, s_poll);
                    PyObject *index =
                        poll == NULL ? NULL
                                     : PyObject_GetAttr(op, s_index);
                    PyObject *token =
                        index == NULL ? NULL
                                      : PyObject_GetAttr(op, s_token);
                    PyObject *res =
                        token == NULL
                            ? NULL
                            : PyObject_CallFunctionObjArgs(
                                  poll, index, token, time_obj, NULL);
                    Py_XDECREF(poll);
                    Py_XDECREF(index);
                    Py_XDECREF(token);
                    if (res == NULL || !PyTuple_Check(res) ||
                        PyTuple_GET_SIZE(res) != 2) {
                        if (res != NULL && !PyErr_Occurred())
                            PyErr_SetString(refs.ProtocolError,
                                            "malformed poll result");
                        Py_XDECREF(res);
                        Py_DECREF(op);
                        failed = 1;
                        break;
                    }
                    PyObject *st = PyTuple_GET_ITEM(res, 0);
                    if (status_is(st, "ok")) {
                        value = Py_None;
                        Py_INCREF(value);
                        Py_DECREF(res);
                        Py_DECREF(op);
                        continue;
                    }
                    if (status_is(st, "full")) {
                        if (park_blocked(handle, op, refs.BLOCKED_WRITE,
                                         s_park_writer) < 0)
                            failed = 1;
                    }
                    else {
                        PyErr_Format(refs.ProtocolError,
                                     "bad poll_write status %R", st);
                        failed = 1;
                    }
                    Py_DECREF(res);
                    Py_DECREF(op);
                    break;
                }
                if (ocls == refs.Delay) {
                    if (PyObject_SetAttr(handle, s_state, refs.DELAYED) < 0 ||
                        PyObject_SetAttr(handle, s_pending_op, op) < 0) {
                        Py_DECREF(op);
                        failed = 1;
                        break;
                    }
                    PyObject *duration = PyObject_GetAttr(op, s_duration);
                    if (duration == NULL) {
                        Py_DECREF(op);
                        failed = 1;
                        break;
                    }
                    double d = PyFloat_AsDouble(duration);
                    Py_DECREF(duration);
                    if (d == -1.0 && PyErr_Occurred()) {
                        Py_DECREF(op);
                        failed = 1;
                        break;
                    }
                    PyObject *seq = draw_sequence(sim);
                    PyObject *when =
                        seq == NULL ? NULL : PyFloat_FromDouble(now + d);
                    PyObject *resume_event =
                        when == NULL
                            ? NULL
                            : PyObject_GetAttr(handle, s_resume_event);
                    if (resume_event == NULL) {
                        Py_XDECREF(when);
                        Py_XDECREF(seq);
                        Py_DECREF(op);
                        failed = 1;
                        break;
                    }
                    PyObject *new_entry = PyTuple_New(3);
                    if (new_entry == NULL) {
                        Py_DECREF(resume_event);
                        Py_DECREF(when);
                        Py_DECREF(seq);
                        Py_DECREF(op);
                        failed = 1;
                        break;
                    }
                    PyTuple_SET_ITEM(new_entry, 0, when);
                    PyTuple_SET_ITEM(new_entry, 1, seq);
                    PyTuple_SET_ITEM(new_entry, 2, resume_event);
                    int rc = heap_push(heap, new_entry);
                    Py_DECREF(new_entry);
                    Py_DECREF(op);
                    if (rc < 0)
                        failed = 1;
                    break;
                }
                if (ocls == refs.Halt) {
                    if (PyObject_SetAttr(handle, s_state, refs.DONE) < 0) {
                        Py_DECREF(op);
                        failed = 1;
                        break;
                    }
                    if (!trusted) {
                        PyObject *res = PyObject_CallMethodNoArgs(
                            generator, s_close);
                        if (res == NULL) {
                            Py_DECREF(op);
                            failed = 1;
                            break;
                        }
                        Py_DECREF(res);
                    }
                    Py_DECREF(op);
                    break;
                }
                {
                    PyObject *pname = PyObject_GetAttr(handle, s_name);
                    PyErr_Format(refs.ProtocolError,
                                 "process %V yielded unknown operation %R",
                                 pname, "?", op);
                    Py_XDECREF(pname);
                    Py_DECREF(op);
                    failed = 1;
                    break;
                }
            }
            Py_DECREF(generator);
            Py_DECREF(stepfn);
            Py_DECREF(handle);
            Py_XDECREF(value);
            value = NULL;
        }
        Py_DECREF(entry);
        if (failed)
            break;
        if (events == event_limit) {
            halted = 1;
            break;
        }
    }

    Py_DECREF(runq);
    Py_DECREF(heap);

    /* Mirror the pure loop's `finally`: the event count survives an
     * exception so diagnostics stay truthful. */
    {
        PyObject *ptype = NULL, *pvalue = NULL, *ptb = NULL;
        if (failed)
            PyErr_Fetch(&ptype, &pvalue, &ptb);
        PyObject *count = PyObject_GetAttr(sim, s_event_count);
        if (count != NULL) {
            long long total = PyLong_AsLongLong(count);
            Py_DECREF(count);
            if (!(total == -1 && PyErr_Occurred())) {
                PyObject *updated = PyLong_FromLongLong(total + events);
                if (updated != NULL) {
                    PyObject_SetAttr(sim, s_event_count, updated);
                    Py_DECREF(updated);
                }
            }
        }
        if (PyErr_Occurred() && !failed) {
            /* Event-count bookkeeping failed on an otherwise clean
             * run: surface it. */
            return NULL;
        }
        PyErr_Clear();
        if (failed) {
            PyErr_Restore(ptype, pvalue, ptb);
            return NULL;
        }
    }
    return Py_BuildValue("(Lii)", events, halted, bail);
}

/* ---- configuration ----------------------------------------------------- */

static PyObject *
configure(PyObject *module, PyObject *args)
{
    PyObject *ns;
    if (!PyArg_ParseTuple(args, "O!", &PyDict_Type, &ns))
        return NULL;
#define FETCH(field, key)                                                  \
    do {                                                                   \
        PyObject *obj = PyDict_GetItemString(ns, key);                     \
        if (obj == NULL) {                                                 \
            PyErr_Format(PyExc_KeyError, "configure: missing %s", key);    \
            return NULL;                                                   \
        }                                                                  \
        Py_INCREF(obj);                                                    \
        Py_XSETREF(refs.field, obj);                                       \
    } while (0)
    FETCH(ResumeEvent, "ResumeEvent");
    FETCH(RetryEvent, "RetryEvent");
    FETCH(Read, "Read");
    FETCH(Write, "Write");
    FETCH(Delay, "Delay");
    FETCH(Halt, "Halt");
    FETCH(DONE, "DONE");
    FETCH(KILLED, "KILLED");
    FETCH(BLOCKED_READ, "BLOCKED_READ");
    FETCH(BLOCKED_WRITE, "BLOCKED_WRITE");
    FETCH(DELAYED, "DELAYED");
    FETCH(ProtocolError, "ProtocolError");
    FETCH(SimulationError, "SimulationError");
#undef FETCH
    refs.ready = 1;
    Py_RETURN_NONE;
}

static PyMethodDef kernel_methods[] = {
    {"configure", configure, METH_VARARGS,
     "Install the engine classes the drive loop dispatches on."},
    {"drive", drive, METH_VARARGS,
     "drive(sim, time_limit, event_limit) -> (events, halted, bail)\n"
     "Run the stepped heap drive loop in C."},
    {NULL, NULL, 0, NULL},
};

static struct PyModuleDef kernel_module = {
    PyModuleDef_HEAD_INIT,
    "repro.kpn._ckernel",
    "Compiled drive kernel for the stepped execution core.",
    -1,
    kernel_methods,
};

PyMODINIT_FUNC
PyInit__ckernel(void)
{
    if (intern_names() < 0)
        return NULL;
    return PyModule_Create(&kernel_module);
}
