"""Loader for the optional compiled drive kernel.

The stepped execution core has a hand-written C twin of its hottest
loop (``repro/kpn/_ckernel.c``).  The extension is an optional
accelerator: nothing in the library requires it, every behaviour has a
pure-Python implementation, and traces are byte-identical either way
(pinned by the golden-trace suite).

Build it in place with::

    REPRO_BUILD_CKERNEL=1 python setup.py build_ext --inplace

or gate a pip install the same way (``REPRO_BUILD_CKERNEL=1 pip
install -e .``).  Set ``REPRO_PURE_KERNEL=1`` to ignore a built
extension and force the pure-Python loops — useful for benchmarking the
pure path and for differential testing.

:func:`configure` is called once by :mod:`repro.kpn.simulator` at
import time, handing the extension the engine's event/operation classes
and state members; until then the kernel is unavailable.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, Optional

_ck = None
if os.environ.get("REPRO_PURE_KERNEL", "").strip().lower() not in (
    "1",
    "true",
    "yes",
):
    try:
        from repro.kpn import _ckernel as _ck  # type: ignore[attr-defined]
    except ImportError:
        _ck = None

#: ``_ckernel.drive`` once configured, else ``None``.  The simulator
#: tests this at construction to decide whether the compiled heap drive
#: can be installed.
DRIVE: Optional[Callable[[Any, float, int], tuple]] = None


def available() -> bool:
    """True when the compiled kernel is importable and configured."""
    return DRIVE is not None


def configure(namespace: Dict[str, Any]) -> Optional[Callable]:
    """Hand the engine classes to the extension; returns its drive
    entry point (or ``None`` when the extension is absent/disabled)."""
    global DRIVE
    if _ck is None:
        return None
    _ck.configure(namespace)
    DRIVE = _ck.drive
    return DRIVE
