"""Process base class and the standard process shapes.

All processes are generator-based (see :mod:`repro.kpn.operations`).  The
shapes provided here cover the paper's experimental setup:

* :class:`PeriodicSource` — a producer ``P`` releasing tokens on a PJD
  schedule (Table 1 "Input Encoded Frame Rate" / "Input Data Sample Rate");
* :class:`PeriodicConsumer` — a consumer ``C`` issuing reads on a PJD
  schedule and recording arrival statistics (the "Consumer Token
  Consumption" column and the decoded inter-frame timing block of
  Table 2);
* :class:`FunctionProcess` — a worker that reads one token, computes for a
  (possibly jittered) service time, and writes one transformed token;
* :class:`RecordingSink` — a greedy reader used by equivalence checks.

Application-specific processes (split-stream, merge-frame, motion
estimation, ...) subclass :class:`Process` directly in :mod:`repro.apps`.

The standard shapes all reuse one operation record per kind across
iterations (mutating ``duration`` / ``token`` between yields) instead of
allocating a fresh record per yield — see :mod:`repro.kpn.operations` for
why this is observationally identical.  Tokens are built through
``tuple.__new__`` directly: one source constructs one token per event on
the engine's hottest path, and bypassing even the ``Token.__new__``
keyword machinery is measurable there.
"""

from __future__ import annotations

import math
from collections import OrderedDict
from typing import Any, Callable, List, Optional, Tuple

import numpy as np

from repro.kpn.channel import ReadEndpoint, WriteEndpoint
from repro.kpn.errors import ProtocolError
from repro.kpn.operations import Delay, Read, Write
from repro.kpn.tokens import Token
from repro.rtc.pjd import PJD

_tuple_new = tuple.__new__


def pjd_schedule(
    model: PJD,
    count: int,
    rng: np.random.Generator,
    start: float = 0.0,
) -> List[float]:
    """Generate ``count`` event instants conforming to a PJD model.

    Event ``i`` is placed at ``start + i * period + phi`` with ``phi``
    uniform in ``[-jitter/2, +jitter/2]``, then pushed right as needed to
    respect the minimum inter-event distance.  The resulting trace
    satisfies the model's arrival-curve pair (verified by property tests).
    """
    if count < 0:
        raise ValueError("count must be >= 0")
    if count == 0:
        return []
    half_jitter = model.jitter / 2.0
    period = model.period
    min_distance = model.min_distance
    # Vectorised nominal instants.  ``start + i*period + phi_i`` evaluated
    # elementwise in float64 performs the identical IEEE operation
    # sequence as the historical scalar loop (left-associated add chain),
    # so schedules — and therefore traces — stay bit-exact.  One
    # vectorised ``uniform`` draw is likewise bit-identical to ``count``
    # scalar draws from the same generator state.
    if half_jitter > 0:
        offsets = rng.uniform(-half_jitter, half_jitter, size=count)
        nominals = (start + np.arange(count) * period + offsets).tolist()
    else:
        nominals = (start + np.arange(count) * period).tolist()
    # The min-distance recurrence must stay scalar: rewriting it with
    # accumulated maxima changes float rounding when the constraint
    # binds.  The branch chain replicates ``max(nominal, previous +
    # min_distance, 0.0)`` exactly, including its keep-the-first-argument
    # tie behaviour.
    times: List[float] = []
    append = times.append
    previous = -math.inf
    for nominal in nominals:
        instant = nominal
        floor_value = previous + min_distance
        if floor_value > instant:
            instant = floor_value
        if 0.0 > instant:
            instant = 0.0
        append(instant)
        previous = instant
    return times


#: Memoised PJD schedules.  A schedule is a pure function of
#: ``(period, jitter, min_distance, count, seed, start)`` — sources and
#: consumers draw from a generator seeded fresh inside ``behavior`` and
#: never touch it again — so identical processes across runs (benchmark
#: rounds, sweep points, campaign scenarios re-using an app seed) can
#: share one tuple instead of re-running ``default_rng`` + the scalar
#: min-distance recurrence.  Values are exactly what
#: :func:`pjd_schedule` returns, so cached and uncached runs are
#: byte-identical.
_SCHEDULE_CACHE: "OrderedDict[tuple, Tuple[float, ...]]" = OrderedDict()
_SCHEDULE_CACHE_MAX = 128


def cached_pjd_schedule(
    model: PJD, count: int, seed: int, start: float = 0.0
) -> Tuple[float, ...]:
    """The :func:`pjd_schedule` of a freshly seeded generator, memoised.

    Only valid for the sources/consumers pattern where the RNG is
    created for the schedule and discarded; processes that keep drawing
    afterwards must call :func:`pjd_schedule` directly.
    """
    key = (model.period, model.jitter, model.min_distance,
           count, seed, start)
    cache = _SCHEDULE_CACHE
    times = cache.get(key)
    if times is None:
        rng = np.random.default_rng(seed)
        times = tuple(pjd_schedule(model, count, rng, start))
        if len(cache) >= _SCHEDULE_CACHE_MAX:
            cache.popitem(last=False)
        cache[key] = times
    else:
        cache.move_to_end(key)
    return times


class Process:
    """Base class for all processes.

    Subclasses implement :meth:`behavior` as a generator yielding
    operations.  ``self.now`` is valid once the process is attached to a
    simulator (i.e. inside the behaviour generator).
    """

    def __init__(self, name: str) -> None:
        self.name = name
        self._sim = None
        self._handle = None
        #: Service-time multiplier; the fault injector raises it above 1.0
        #: to model rate-degradation faults.  Every process that models
        #: computation time must multiply its delays by this.
        self.slowdown = 1.0

    def attach(self, sim, handle) -> None:
        """Called by the simulator upon registration."""
        self._sim = sim
        self._handle = handle

    @property
    def now(self) -> float:
        """Current virtual time (only valid while attached)."""
        if self._sim is None:
            raise ProtocolError(f"{self.name} is not attached to a simulator")
        return self._sim._now

    def behavior(self):
        """The process body (a generator).  Must be overridden."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name})"


class PeriodicSource(Process):
    """A producer releasing ``count`` tokens on a PJD schedule.

    Parameters
    ----------
    name, timing, count:
        Identity, PJD release model, number of tokens to produce.
    payload:
        ``payload(i) -> (value, size_bytes)`` for token ``i`` (0-based).
        Defaults to the index itself with zero size.
    seed:
        Seed for the jitter RNG (determinism policy).
    start:
        Virtual time of the first nominal release.
    """

    def __init__(
        self,
        name: str,
        timing: PJD,
        count: int,
        payload: Optional[Callable[[int], Tuple[Any, int]]] = None,
        seed: int = 0,
        start: float = 0.0,
    ) -> None:
        super().__init__(name)
        self.timing = timing
        self.count = count
        #: ``None`` means the default index payload; the behaviour loop
        #: special-cases it to skip a callable dispatch per token.
        self.payload = payload
        self.seed = seed
        self.start = start
        self.output: Optional[WriteEndpoint] = None
        self.release_times: List[float] = []
        self.commit_times: List[float] = []
        self.blocked_writes = 0

    def behavior(self):
        if self.output is None:
            raise ProtocolError(f"{self.name}: output endpoint not connected")
        schedule = cached_pjd_schedule(self.timing, self.count, self.seed,
                                       self.start)
        # The generator body only runs while attached, so the simulator
        # clock can be read directly; virtual time only changes across a
        # yield, so it is cached in a local between yields.
        sim = self._sim
        name = self.name
        payload = self.payload
        release_append = self.release_times.append
        commit_append = self.commit_times.append
        delay_op = Delay(0.0)
        write_op = Write(self.output, None)
        for i, release in enumerate(schedule):
            now = sim._now
            wait = release - now
            if wait > 0:
                delay_op.duration = wait
                yield delay_op
                now = sim._now
            if payload is not None:
                value, size = payload(i)
            else:
                value = i
                size = 0
            token = _tuple_new(Token, (value, i + 1, now, size, name))
            release_append(now)
            before = now
            write_op.token = token
            yield write_op
            now = sim._now
            commit_append(now)
            if now > before + 1e-12:
                self.blocked_writes += 1


class PeriodicConsumer(Process):
    """A consumer issuing destructive reads on a PJD schedule.

    Records the completion time of every read (``arrival_times``), the
    consumed tokens, and how often / how long it stalled on an empty FIFO —
    the paper requires a correctly sized network to never stall the
    consumer (Section 3.3).

    Every demand instant is offset by :data:`TIE_EPSILON` so that a demand
    coinciding exactly with a producer-side write (possible with zero
    jitter) resolves in the physically meaningful order — data ready
    before it is consumed.  Continuous-time analyses treat such
    simultaneous events as ordered; the discrete event queue needs the
    nudge to agree.
    """

    #: Deterministic offset applied to every demand instant (ms).
    TIE_EPSILON = 1e-6

    def __init__(
        self,
        name: str,
        timing: PJD,
        count: int,
        seed: int = 0,
        start: float = 0.0,
        keep_values: bool = True,
    ) -> None:
        super().__init__(name)
        self.timing = timing
        self.count = count
        self.seed = seed
        self.start = start
        self.keep_values = keep_values
        self.input: Optional[ReadEndpoint] = None
        self.arrival_times: List[float] = []
        self.tokens: List[Token] = []
        self.stalls = 0
        self.total_stall_time = 0.0

    def behavior(self):
        if self.input is None:
            raise ProtocolError(f"{self.name}: input endpoint not connected")
        schedule = cached_pjd_schedule(self.timing, self.count, self.seed,
                                       self.start)
        tie_epsilon = self.TIE_EPSILON
        sim = self._sim
        keep = self.keep_values
        arrival_append = self.arrival_times.append
        token_append = self.tokens.append
        delay_op = Delay(0.0)
        read_op = Read(self.input)
        for demand in schedule:
            wait = demand + tie_epsilon - sim._now
            if wait > 0:
                delay_op.duration = wait
                yield delay_op
            attempt = sim._now
            token = yield read_op
            now = sim._now
            if now > attempt + 1e-12:
                self.stalls += 1
                self.total_stall_time += now - attempt
            arrival_append(now)
            if keep:
                token_append(token)

    def inter_arrival_times(self) -> List[float]:
        """Gaps between consecutive read completions (Table 2's decoded
        inter-frame timing statistics)."""
        times = self.arrival_times
        return [b - a for a, b in zip(times, times[1:])]


class FunctionProcess(Process):
    """Read one token, compute, write one transformed token, repeat.

    ``transform(value) -> value`` maps payloads (or ``transform(value,
    seqno)`` with ``takes_seqno=True``, which lets applications memoise
    deterministic per-token computations); ``service`` is either a constant
    service time in ms or a callable ``service(token, rng) -> ms``
    (jittered computation).  ``out_size`` optionally overrides the output
    token size (e.g. a decoder inflating 10 KB frames to 76.8 KB).
    """

    def __init__(
        self,
        name: str,
        transform: Callable[..., Any],
        service: Any = 0.0,
        seed: int = 0,
        out_size: Optional[Callable[[Any], int]] = None,
        takes_seqno: bool = False,
    ) -> None:
        super().__init__(name)
        self.transform = transform
        self.service = service
        self.seed = seed
        self.out_size = out_size
        self.takes_seqno = takes_seqno
        self.input: Optional[ReadEndpoint] = None
        self.output: Optional[WriteEndpoint] = None
        self.processed = 0

    def _service_time(self, token: Token, rng: np.random.Generator) -> float:
        if callable(self.service):
            base = float(self.service(token, rng))
        else:
            base = float(self.service)
        return base * self.slowdown

    def behavior(self):
        if self.input is None or self.output is None:
            raise ProtocolError(f"{self.name}: endpoints not connected")
        rng = np.random.default_rng(self.seed)
        sim = self._sim
        name = self.name
        transform = self.transform
        takes_seqno = self.takes_seqno
        out_size = self.out_size
        service_time = self._service_time
        delay_op = Delay(0.0)
        read_op = Read(self.input)
        write_op = Write(self.output, None)
        while True:
            token = yield read_op
            duration = service_time(token, rng)
            if duration > 0:
                delay_op.duration = duration
                yield delay_op
            seqno = token[1]
            if takes_seqno:
                value = transform(token[0], seqno)
            else:
                value = transform(token[0])
            size = out_size(value) if out_size is not None else token[3]
            write_op.token = _tuple_new(
                Token, (value, seqno, sim._now, size, name)
            )
            yield write_op
            self.processed += 1


class PacedRelay(Process):
    """Relay tokens while shaping the output to a PJD model.

    Reads a token, optionally transforms it, and releases it no earlier
    than its PJD target instant: token ``j`` is released at
    ``max(nominal_j + phi_j, previous + d, ready)`` where ``nominal_j``
    advances by one period per token and ``phi_j`` is uniform jitter.
    This is how a replica's exit stage (e.g. the MJPEG ``mergeframe``
    process) enforces the interface timing of Table 1, and how design
    diversity between replicas is expressed (different jitter seeds and
    magnitudes).

    Rate-degradation faults stretch the pacing: the nominal increment and
    the minimum distance are multiplied by ``self.slowdown``.
    """

    def __init__(
        self,
        name: str,
        timing: PJD,
        transform: Optional[Callable[[Any], Any]] = None,
        seed: int = 0,
        start: float = 0.0,
        out_size: Optional[Callable[[Any], int]] = None,
    ) -> None:
        super().__init__(name)
        self.timing = timing
        self.transform = transform
        self.seed = seed
        self.start = start
        self.out_size = out_size
        self.input: Optional[ReadEndpoint] = None
        self.output: Optional[WriteEndpoint] = None
        self.release_times: List[float] = []

    def behavior(self):
        if self.input is None or self.output is None:
            raise ProtocolError(f"{self.name}: endpoints not connected")
        rng = np.random.default_rng(self.seed)
        half_jitter = self.timing.jitter / 2.0
        nominal = self.start
        previous = -math.inf
        sim = self._sim
        name = self.name
        transform = self.transform
        out_size = self.out_size
        release_append = self.release_times.append
        delay_op = Delay(0.0)
        read_op = Read(self.input)
        write_op = Write(self.output, None)
        while True:
            token = yield read_op
            nominal += self.timing.period * self.slowdown
            target = nominal
            if half_jitter > 0:
                target += rng.uniform(-half_jitter, half_jitter)
            target = max(
                target,
                previous + self.timing.min_distance * self.slowdown,
                sim._now,
            )
            wait = target - sim._now
            if wait > 0:
                delay_op.duration = wait
                yield delay_op
            now = sim._now
            previous = now
            value = transform(token[0]) if transform is not None else token[0]
            size = out_size(value) if out_size is not None else token[3]
            write_op.token = _tuple_new(
                Token, (value, token[1], now, size, name)
            )
            release_append(now)
            yield write_op


class RecordingSink(Process):
    """Greedily read everything from a channel, recording (time, token).

    Used by the equivalence checker to capture a network's raw output
    sequence ``Q_C`` with its timestamps ``t(Q_C)``.
    """

    def __init__(self, name: str, limit: Optional[int] = None) -> None:
        super().__init__(name)
        self.limit = limit
        self.input: Optional[ReadEndpoint] = None
        self.records: List[Tuple[float, Token]] = []

    def behavior(self):
        if self.input is None:
            raise ProtocolError(f"{self.name}: input endpoint not connected")
        sim = self._sim
        records = self.records
        read_op = Read(self.input)
        while self.limit is None or len(records) < self.limit:
            token = yield read_op
            records.append((sim._now, token))

    def values(self) -> List[Any]:
        """The received payload sequence."""
        return [token.value for _, token in self.records]

    def times(self) -> List[float]:
        """The receive timestamps."""
        return [time for time, _ in self.records]
