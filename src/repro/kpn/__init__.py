"""Deterministic discrete-event simulator for Kahn process networks.

The paper's framework operates on *real time process networks*: dataflow
graphs of processes communicating over bounded FIFO channels with blocking
read/write semantics (Section 2).  This package provides that substrate as
a deterministic discrete-event simulation:

* :class:`~repro.kpn.simulator.Simulator` — the event engine (virtual time,
  total event order, reproducible tie-breaking);
* :class:`~repro.kpn.process.Process` — generator-based processes that
  yield :class:`~repro.kpn.operations.Read` / ``Write`` / ``Delay``
  operations;
* :class:`~repro.kpn.channel.Fifo` — bounded FIFO channels with blocking
  semantics, optional transfer latency (fed by the SCC model) and fill
  instrumentation;
* :class:`~repro.kpn.network.Network` — the process-network graph with
  structural validation;
* :mod:`~repro.kpn.trace` — token event traces used for calibration
  (Eq. 2) and for the observed-fill rows of Table 2.
"""

from repro.kpn.errors import (
    DeadlockError,
    KpnError,
    ProtocolError,
    SimulationError,
)
from repro.kpn.operations import Delay, Halt, Operation, Read, Write
from repro.kpn.tokens import Token
from repro.kpn.channel import Fifo, ReadEndpoint, WriteEndpoint
from repro.kpn.process import (
    FunctionProcess,
    PacedRelay,
    PeriodicConsumer,
    PeriodicSource,
    Process,
    RecordingSink,
    pjd_schedule,
)
from repro.kpn.network import Network
from repro.kpn.simulator import ProcessHandle, ProcessState, Simulator
from repro.kpn.trace import ChannelTrace, EventRecord, TraceRecorder

__all__ = [
    "DeadlockError",
    "KpnError",
    "ProtocolError",
    "SimulationError",
    "Delay",
    "Halt",
    "Operation",
    "Read",
    "Write",
    "Token",
    "Fifo",
    "ReadEndpoint",
    "WriteEndpoint",
    "FunctionProcess",
    "PacedRelay",
    "pjd_schedule",
    "PeriodicConsumer",
    "PeriodicSource",
    "Process",
    "RecordingSink",
    "Network",
    "ProcessHandle",
    "ProcessState",
    "Simulator",
    "ChannelTrace",
    "EventRecord",
    "TraceRecorder",
]
