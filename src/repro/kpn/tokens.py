"""Data tokens flowing through FIFO channels.

A token ``T_k[j]`` (Section 2) carries a payload value, a monotonically
increasing per-stream sequence number ``j``, and the timestamp ``t(k, j)``
of the instant it was produced.  The size in bytes drives the SCC
communication-latency model (the paper's tokens are 10 KB encoded frames,
76.8 KB decoded frames and 3 KB ADPCM samples).

Representation
--------------

``Token`` is an immutable ``tuple`` subclass rather than a frozen
dataclass: sources construct one token per event on the engine's hottest
path, and ``tuple.__new__`` is several times cheaper than a frozen
dataclass ``__init__`` (which pays one ``object.__setattr__`` round-trip
per field).  The public surface is unchanged — named attribute access,
keyword construction, :meth:`stamped` / :meth:`with_value` copies, and
``dataclasses.FrozenInstanceError`` on attempted mutation.

Zero-copy payloads
------------------

Byte-stream payloads (encoded frames, access units, sample blocks) flow
through the replicator → selector chains *by reference*: channels move
token objects, never payload bytes.  The only places copies can occur are
process boundaries that re-slice or re-assemble streams.  For those,
:meth:`Token.view` derives a sub-token backed by a read-only
``memoryview`` of the parent payload (no bytes are moved) and
:meth:`Token.materialize` performs the one *explicit* copy when a real
``bytes`` object is genuinely required.  Both sides are counted in
:data:`COPY_STATS` so a run can prove transport was copy-free (the
per-channel complement lives in :class:`repro.kpn.channel.Fifo`).

``memoryview`` payloads over ``bytes`` are hashable and compare equal to
the bytes they view, so memoised codec caches and the determinacy
equivalence checks are representation-blind.
"""

from __future__ import annotations

from dataclasses import FrozenInstanceError
from typing import Any, Optional

_tuple_new = tuple.__new__


class PayloadCopyStats:
    """Process-wide accounting of payload copies vs zero-copy views.

    ``copies`` / ``copied_bytes`` count explicit payload materialisations
    (the copies a zero-copy pipeline is supposed to eliminate); ``views``
    counts zero-copy sub-tokens derived via :meth:`Token.view`.
    """

    __slots__ = ("copies", "copied_bytes", "views")

    def __init__(self) -> None:
        self.reset()

    def reset(self) -> None:
        self.copies = 0
        self.copied_bytes = 0
        self.views = 0

    def count_copy(self, nbytes: int) -> None:
        self.copies += 1
        self.copied_bytes += nbytes

    def as_dict(self) -> dict:
        return {
            "copies": self.copies,
            "copied_bytes": self.copied_bytes,
            "views": self.views,
        }

    def snapshot(self) -> dict:
        """Point-in-time copy of the counters (a plain dict)."""
        return self.as_dict()

    def delta(self, since: dict) -> dict:
        """Counter increments since an earlier :meth:`snapshot`.

        The result is pickleable, so a sweep worker can ship the copies
        *its* run performed back to the parent process (whose global
        instance never saw them).
        """
        return {
            "copies": self.copies - since.get("copies", 0),
            "copied_bytes": self.copied_bytes
            - since.get("copied_bytes", 0),
            "views": self.views - since.get("views", 0),
        }

    def merge(self, counts: "PayloadCopyStats | dict") -> None:
        """Fold another instance's (or snapshot's) counters into this
        one — how the sweep executor credits worker-side copies to the
        parent process's accounting."""
        if isinstance(counts, PayloadCopyStats):
            counts = counts.as_dict()
        self.copies += counts.get("copies", 0)
        self.copied_bytes += counts.get("copied_bytes", 0)
        self.views += counts.get("views", 0)

    def __repr__(self) -> str:
        return (
            f"PayloadCopyStats(copies={self.copies}, "
            f"copied_bytes={self.copied_bytes}, views={self.views})"
        )


#: Global payload-copy accounting (per process).  Parallel sweep workers
#: each count their own; the executor ships per-task deltas back and
#: :meth:`PayloadCopyStats.merge`\ s them here, so parent-side totals
#: agree with serial execution.  Reset with ``COPY_STATS.reset()``.
COPY_STATS = PayloadCopyStats()


class Token(tuple):
    """One data token.

    Attributes
    ----------
    value:
        The payload.  Determinacy (Section 2) means this depends only on
        the input token sequence, never on timing — the equivalence checks
        compare these values between reference and duplicated networks.
    seqno:
        Per-stream sequence number ``j`` (1-based, as in the paper).
    stamp:
        Production timestamp ``t(k, j)`` in simulated milliseconds;
        ``None`` until first produced.
    size_bytes:
        Payload size used by communication-latency models.
    origin:
        Name of the producing process (diagnostic only).
    """

    __slots__ = ()

    def __new__(
        cls,
        value: Any,
        seqno: int = 0,
        stamp: Optional[float] = None,
        size_bytes: int = 0,
        origin: str = "",
    ) -> "Token":
        return _tuple_new(cls, (value, seqno, stamp, size_bytes, origin))

    # Field accessors.  Hot engine paths read ``seqno`` and ``value``;
    # tuple indexing through a property is the cheapest attribute scheme
    # that keeps the instance immutable.
    @property
    def value(self) -> Any:
        return self[0]

    @property
    def seqno(self) -> int:
        return self[1]

    @property
    def stamp(self) -> Optional[float]:
        return self[2]

    @property
    def size_bytes(self) -> int:
        return self[3]

    @property
    def origin(self) -> str:
        return self[4]

    def __setattr__(self, name: str, val: Any) -> None:
        raise FrozenInstanceError(f"cannot assign to field {name!r}")

    def __delattr__(self, name: str) -> None:
        raise FrozenInstanceError(f"cannot delete field {name!r}")

    def __getnewargs__(self) -> tuple:
        return tuple(self)

    def __repr__(self) -> str:
        return (
            f"Token(value={self[0]!r}, seqno={self[1]!r}, "
            f"stamp={self[2]!r}, size_bytes={self[3]!r}, "
            f"origin={self[4]!r})"
        )

    # -- derived copies -----------------------------------------------------

    def stamped(self, time: float, seqno: Optional[int] = None,
                origin: Optional[str] = None) -> "Token":
        """A copy of this token stamped with a production time (and
        optionally renumbered / re-attributed)."""
        return _tuple_new(
            Token,
            (
                self[0],
                self[1] if seqno is None else seqno,
                time,
                self[3],
                self[4] if origin is None else origin,
            ),
        )

    def with_value(self, value: Any,
                   size_bytes: Optional[int] = None) -> "Token":
        """A copy carrying a transformed payload (same identity fields)."""
        return _tuple_new(
            Token,
            (
                value,
                self[1],
                self[2],
                self[3] if size_bytes is None else size_bytes,
                self[4],
            ),
        )

    # -- zero-copy payload derivation ---------------------------------------

    def view(self, start: int = 0, stop: Optional[int] = None,
             origin: Optional[str] = None) -> "Token":
        """A zero-copy sub-token over ``value[start:stop]``.

        The payload must support the buffer protocol (``bytes``,
        ``bytearray``, ``memoryview``, ...).  The derived token's payload
        is a read-only ``memoryview`` sharing the parent's storage — no
        bytes are copied — and its ``size_bytes`` is the slice length.
        """
        buffer = self[0]
        if type(buffer) is not memoryview:
            buffer = memoryview(buffer)
        view = buffer[start:stop] if stop is not None else buffer[start:]
        if not view.readonly:
            view = view.toreadonly()
        COPY_STATS.views += 1
        return _tuple_new(
            Token,
            (
                view,
                self[1],
                self[2],
                view.nbytes,
                self[4] if origin is None else origin,
            ),
        )

    def materialize(self) -> "Token":
        """A token whose payload is an owned ``bytes`` object.

        The one sanctioned copy point: a ``memoryview`` payload is copied
        into fresh bytes (counted in :data:`COPY_STATS`); any other
        payload is already owned and the token is returned unchanged.
        """
        buffer = self[0]
        if type(buffer) is not memoryview:
            return self
        COPY_STATS.count_copy(buffer.nbytes)
        return _tuple_new(
            Token, (bytes(buffer), self[1], self[2], self[3], self[4])
        )
