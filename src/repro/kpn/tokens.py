"""Data tokens flowing through FIFO channels.

A token ``T_k[j]`` (Section 2) carries a payload value, a monotonically
increasing per-stream sequence number ``j``, and the timestamp ``t(k, j)``
of the instant it was produced.  The size in bytes drives the SCC
communication-latency model (the paper's tokens are 10 KB encoded frames,
76.8 KB decoded frames and 3 KB ADPCM samples).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any, Optional


@dataclass(frozen=True)
class Token:
    """One data token.

    Attributes
    ----------
    value:
        The payload.  Determinacy (Section 2) means this depends only on
        the input token sequence, never on timing — the equivalence checks
        compare these values between reference and duplicated networks.
    seqno:
        Per-stream sequence number ``j`` (1-based, as in the paper).
    stamp:
        Production timestamp ``t(k, j)`` in simulated milliseconds;
        ``None`` until first produced.
    size_bytes:
        Payload size used by communication-latency models.
    origin:
        Name of the producing process (diagnostic only).
    """

    value: Any
    seqno: int = 0
    stamp: Optional[float] = None
    size_bytes: int = 0
    origin: str = ""

    def stamped(self, time: float, seqno: Optional[int] = None,
                origin: Optional[str] = None) -> "Token":
        """A copy of this token stamped with a production time (and
        optionally renumbered / re-attributed)."""
        return replace(
            self,
            stamp=time,
            seqno=self.seqno if seqno is None else seqno,
            origin=self.origin if origin is None else origin,
        )

    def with_value(self, value: Any, size_bytes: Optional[int] = None) -> "Token":
        """A copy carrying a transformed payload (same identity fields)."""
        return replace(
            self,
            value=value,
            size_bytes=self.size_bytes if size_bytes is None else size_bytes,
        )
