"""Operations a process may yield to the simulator.

Processes are Python generators.  Each ``yield`` hands the simulator one of
the operations below; the simulator completes it (possibly after blocking in
virtual time) and resumes the generator with the operation's result:

* ``token = yield Read(endpoint)`` — destructive blocking read;
* ``yield Write(endpoint, token)`` — blocking write;
* ``yield Delay(duration)`` — advance virtual time (models computation);
* ``yield Halt()`` — terminate the process cleanly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any


class Operation:
    """Marker base class for yielded operations."""


@dataclass(frozen=True)
class Read(Operation):
    """Blocking destructive read from a channel read endpoint."""

    endpoint: Any


@dataclass(frozen=True)
class Write(Operation):
    """Blocking write of ``token`` to a channel write endpoint."""

    endpoint: Any
    token: Any


@dataclass(frozen=True)
class Delay(Operation):
    """Advance the process's local virtual time by ``duration`` (>= 0)."""

    duration: float

    def __post_init__(self) -> None:
        if self.duration < 0:
            raise ValueError(f"delay must be >= 0, got {self.duration}")


@dataclass(frozen=True)
class Halt(Operation):
    """Terminate the process."""
