"""Operations a process may yield to the simulator.

Processes are Python generators.  Each ``yield`` hands the simulator one of
the operations below; the simulator completes it (possibly after blocking in
virtual time) and resumes the generator with the operation's result:

* ``token = yield Read(endpoint)`` — destructive blocking read;
* ``yield Write(endpoint, token)`` — blocking write;
* ``yield Delay(duration)`` — advance virtual time (models computation);
* ``yield Halt()`` — terminate the process cleanly.

Operations are plain ``__slots__`` records, not frozen dataclasses: a
process owns the operations it yields and may *reuse* one instance across
iterations, mutating its fields between yields.  The engine only reads an
operation's fields while it is the process's current (pending) operation,
and a process can have at most one operation outstanding — it is suspended
at the yield until the operation completes — so reuse is observationally
identical to allocating a fresh record per yield while eliminating an
allocation on the hottest path in the library.  The standard process shapes
in :mod:`repro.kpn.process` all use this pattern.
"""

from __future__ import annotations

from typing import Any


class Operation:
    """Marker base class for yielded operations."""

    __slots__ = ()


class Read(Operation):
    """Blocking destructive read from a channel read endpoint.

    The channel, interface index and poll entry point are captured at
    construction: an operation is created once per process and reused,
    so pre-binding ``channel.poll_read`` here removes two attribute hops
    and a method bind from every poll the engine performs.
    """

    __slots__ = ("endpoint", "channel", "index", "poll", "retry_at")

    def __init__(self, endpoint: Any) -> None:
        self.endpoint = endpoint
        channel = endpoint.channel
        self.channel = channel
        self.index = endpoint.index
        self.poll = channel.poll_read
        #: Self-polling step machines (:mod:`repro.kpn.stepmachine`)
        #: record the payload of the failed poll here when they hand a
        #: blocked read back to the engine: ``None`` for ``empty`` (park)
        #: or the ready instant for ``wait`` (timed channels).  The
        #: engine trusts it instead of re-polling.  Generator execution
        #: never reads or writes this field.
        self.retry_at = None

    def __repr__(self) -> str:
        return f"Read(endpoint={self.endpoint!r})"


class Write(Operation):
    """Blocking write of ``token`` to a channel write endpoint.

    Pre-binds ``channel.poll_write`` exactly as :class:`Read` does.
    """

    __slots__ = ("endpoint", "channel", "index", "poll", "token")

    def __init__(self, endpoint: Any, token: Any) -> None:
        self.endpoint = endpoint
        channel = endpoint.channel
        self.channel = channel
        self.index = endpoint.index
        self.poll = channel.poll_write
        self.token = token

    def __repr__(self) -> str:
        return f"Write(endpoint={self.endpoint!r}, token={self.token!r})"


class Delay(Operation):
    """Advance the process's local virtual time by ``duration`` (>= 0)."""

    __slots__ = ("duration",)

    def __init__(self, duration: float) -> None:
        if duration < 0:
            raise ValueError(f"delay must be >= 0, got {duration}")
        self.duration = duration

    def __repr__(self) -> str:
        return f"Delay({self.duration!r})"


class Halt(Operation):
    """Terminate the process."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "Halt()"
