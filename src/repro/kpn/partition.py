"""Independent-subnetwork partition detection for batch advance.

A KPN graph often decomposes into *independent partitions*: connected
components of the process/channel graph that never exchange tokens.  The
duplicated networks of the paper are usually one component (replicator
and selector tie the halves together), but replay baselines, detached
monitors, and side-by-side reference-vs-duplicated studies produce
genuinely disconnected subnetworks.  Events from different partitions
never causally interact, so the engine may advance a whole partition in
a burst instead of interleaving per-event — see
``Simulator(partitioned=True)`` — as long as cross-partition
synchronisation points (global callbacks: fault injections, scheduled
actions, run horizons) are respected.

Discovery is structural: a process's channel set is read from its
endpoint attributes (any instance attribute holding a
:class:`~repro.kpn.channel.ReadEndpoint` / ``WriteEndpoint``, directly
or one level deep inside a list/tuple/dict), and two processes share a
partition iff they are connected through a chain of shared channels.
Processes exposing no discoverable endpoints are singleton partitions —
the "disconnected monitor" case.  All standard process shapes and the
framework's replicator/selector/monitor processes expose their
endpoints this way.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence

from repro.kpn.channel import ReadEndpoint, WriteEndpoint

_ENDPOINT_TYPES = (ReadEndpoint, WriteEndpoint)


def endpoint_channels(process: Any) -> List[Any]:
    """The channels reachable from ``process``'s endpoint attributes.

    Scans the instance ``__dict__`` (and ``__slots__``-declared
    attributes, when present) for endpoint objects, descending one level
    into lists, tuples and dict values — the containers the multi-port
    shapes use.  Order is deterministic (attribute declaration order,
    then container order) so partition numbering is stable run to run.
    """
    values: List[Any] = []
    instance_dict = getattr(process, "__dict__", None)
    if instance_dict:
        values.extend(instance_dict.values())
    for cls in type(process).__mro__:
        for slot in getattr(cls, "__slots__", ()):
            try:
                values.append(getattr(process, slot))
            except AttributeError:
                continue
    channels: List[Any] = []
    seen: set = set()

    def _collect(value: Any) -> None:
        if isinstance(value, _ENDPOINT_TYPES):
            channel = value.channel
            if id(channel) not in seen:
                seen.add(id(channel))
                channels.append(channel)

    for value in values:
        _collect(value)
        if isinstance(value, (list, tuple)):
            for item in value:
                _collect(item)
        elif isinstance(value, dict):
            for item in value.values():
                _collect(item)
    return channels


class _UnionFind:
    """Path-halving union-find over dense integer ids."""

    def __init__(self, n: int) -> None:
        self.parent = list(range(n))

    def find(self, x: int) -> int:
        parent = self.parent
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(self, a: int, b: int) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra != rb:
            # Lower root wins: keeps partition numbering aligned with
            # first-registered process order (deterministic).
            if ra < rb:
                self.parent[rb] = ra
            else:
                self.parent[ra] = rb


def partition_processes(
    processes: Sequence[Any],
) -> List[List[int]]:
    """Group ``processes`` into connected components.

    Returns a list of index groups (indices into ``processes``), ordered
    by the first-registered member of each group; each group's indices
    are ascending.  Two processes share a group iff they are linked by a
    chain of shared channels.
    """
    n = len(processes)
    uf = _UnionFind(n)
    channel_owner: Dict[int, int] = {}
    for i, process in enumerate(processes):
        for channel in endpoint_channels(process):
            key = id(channel)
            owner = channel_owner.get(key)
            if owner is None:
                channel_owner[key] = i
            else:
                uf.union(owner, i)
    groups: Dict[int, List[int]] = {}
    for i in range(n):
        groups.setdefault(uf.find(i), []).append(i)
    # Dict preserves insertion order = ascending first member.
    return list(groups.values())


def partition_names(processes: Sequence[Any]) -> List[List[str]]:
    """Like :func:`partition_processes` but returns process names."""
    return [
        [processes[i].name for i in group]
        for group in partition_processes(list(processes))
    ]
