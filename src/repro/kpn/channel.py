"""Bounded FIFO channels with blocking semantics.

A :class:`Fifo` is the communication primitive of Section 2: finite
capacity, destructive blocking reads, blocking writes, single reader and
single writer.  The multi-interface replicator and selector channels of the
paper live in :mod:`repro.core` and implement the same engine-facing
protocol, so the simulator treats all of them uniformly.

Channel protocol (duck typing, consumed by
:class:`~repro.kpn.simulator.Simulator`):

``poll_read(index, now) -> (status, payload)``
    ``("ok", token)`` — read committed; ``("wait", t)`` — a token is in
    flight and readable at virtual time ``t``; ``("empty", None)`` — park.
``poll_write(index, token, now) -> (status, None)``
    ``("ok", None)`` — write committed; ``("full", None)`` — park.
``park_reader(index, handle)`` / ``park_writer(index, handle)``
    Register a blocked process; the channel wakes it via
    :meth:`Simulator.retry` when its state changes.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.kpn.errors import ProtocolError
from repro.kpn.tokens import Token
from repro.kpn.trace import ChannelTrace, EventRecord

#: Preallocated poll results for the payload-free statuses — the engine
#: polls on every operation, so even these small tuples are worth sharing.
_EMPTY = ("empty", None)
_FULL = ("full", None)
_OK_WRITE = ("ok", None)


class ReadEndpoint:
    """A (channel, reading-interface) pair a process reads from."""

    __slots__ = ("channel", "index")

    def __init__(self, channel, index: int = 0) -> None:
        self.channel = channel
        self.index = index

    def __repr__(self) -> str:
        return f"ReadEndpoint({self.channel.name}[{self.index}])"


class WriteEndpoint:
    """A (channel, writing-interface) pair a process writes to."""

    __slots__ = ("channel", "index")

    def __init__(self, channel, index: int = 0) -> None:
        self.channel = channel
        self.index = index

    def __repr__(self) -> str:
        return f"WriteEndpoint({self.channel.name}[{self.index}])"


class Fifo:
    """A bounded single-reader single-writer FIFO channel.

    Parameters
    ----------
    name:
        Unique channel name (used in traces and error messages).
    capacity:
        Maximum number of tokens queued or in flight (``|F_i|``).
    transfer_latency:
        Optional ``f(token) -> delay_ms`` modelling communication time;
        the SCC layer supplies mesh/MPB latencies here.  A written token
        only becomes readable ``delay`` after the write instant, but it
        occupies FIFO space immediately (back-pressure is conservative).
    trace:
        Optional :class:`~repro.kpn.trace.ChannelTrace` to record events.
    initial_tokens:
        Tokens pre-filling the queue at time zero (the ``F_{C,0}`` /
        ``|S_k|_0`` priming of Eq. 4).
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when enabled
        the channel samples its fill level into the time series
        ``chan.<name>.fill`` on every committed read and write.
    """

    def __init__(
        self,
        name: str,
        capacity: int,
        transfer_latency: Optional[Callable[[Token], float]] = None,
        trace: Optional[ChannelTrace] = None,
        initial_tokens: Tuple[Token, ...] = (),
        metrics=None,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if len(initial_tokens) > capacity:
            raise ValueError("initial tokens exceed capacity")
        self.name = name
        self.capacity = capacity
        self._latency = transfer_latency
        self.trace = trace
        #: Untimed channels (no transfer latency — the overwhelmingly
        #: common case) queue bare tokens: a committed write is readable
        #: immediately, so per-token ``(ready, token)`` pairs would only
        #: ever carry a ready time in the past.  Timed channels keep the
        #: pair representation.
        self._timed = transfer_latency is not None
        if self._timed:
            self._queue: Deque = deque(
                (0.0, token) for token in initial_tokens
            )
        else:
            self._queue = deque(initial_tokens)
        if trace is not None and initial_tokens:
            trace.preset_fill(len(initial_tokens))
        if metrics is not None and metrics.enabled:
            self._m_fill = metrics.timeseries(f"chan.{name}.fill")
            #: Zero-copy transport proof: counts committed writes whose
            #: payload is a ``memoryview`` (a borrowed slice of another
            #: token's bytes — no payload bytes were moved to build it).
            self._m_zero_copy = metrics.counter(f"chan.{name}.zero_copy")
            if initial_tokens:
                self._m_fill.append(0.0, len(self._queue))
        else:
            self._m_fill = None
            self._m_zero_copy = None
        self._sim = None
        self._parked_readers: Deque = deque()
        self._parked_writers: Deque = deque()
        self._specialize()

    def _specialize(self) -> None:
        """Install closure-specialised poll entry points when possible.

        The general :meth:`poll_read`/:meth:`poll_write` pay ~6 ``self``
        attribute loads per call re-fetching state that is fixed at
        construction (queue, trace, parked deques, capacity).  For the
        overwhelmingly common configurations — untimed FIFO, metrics
        disabled — this binds per-instance closures over that state
        instead; operations pre-bind ``channel.poll_read`` at
        construction, so they pick the specialised version up
        transparently.  Timed or metrics-enabled channels keep the
        general methods (same results either way: the closures are
        line-for-line the untimed/no-metrics branch of the originals).
        """
        if self._timed or self._m_fill is not None:
            return
        name = self.name
        queue = self._queue
        capacity = self.capacity
        trace = self.trace
        parked_readers = self._parked_readers
        parked_writers = self._parked_writers
        popleft = queue.popleft
        push = queue.append
        wake = self._wake

        if trace is None:

            def poll_read(index: int, now: float):
                if index != 0:
                    raise ProtocolError(
                        f"{name}: bad read interface {index}"
                    )
                if not queue:
                    return _EMPTY
                token = popleft()
                if parked_writers:
                    wake(parked_writers)
                return ("ok", token)

            def poll_write(index: int, token: Token, now: float):
                if index != 0:
                    raise ProtocolError(
                        f"{name}: bad write interface {index}"
                    )
                if len(queue) >= capacity:
                    return _FULL
                push(token)
                if parked_readers:
                    wake(parked_readers)
                return _OK_WRITE

        else:

            def poll_read(index: int, now: float):
                if index != 0:
                    raise ProtocolError(
                        f"{name}: bad read interface {index}"
                    )
                if not queue:
                    return _EMPTY
                token = popleft()
                # Inlined ChannelTrace.on_read — see the general method.
                if trace.fill <= 0:
                    trace.on_read(now, token[1])  # raises TraceError
                trace.fill -= 1
                trace.reads += 1
                if trace.record_events:
                    trace.events.append(
                        EventRecord(now, "read", token[1], 0)
                    )
                if parked_writers:
                    wake(parked_writers)
                return ("ok", token)

            def poll_write(index: int, token: Token, now: float):
                if index != 0:
                    raise ProtocolError(
                        f"{name}: bad write interface {index}"
                    )
                if len(queue) >= capacity:
                    return _FULL
                push(token)
                # Inlined ChannelTrace.on_write (see poll_read).
                fill = trace.fill + 1
                trace.fill = fill
                trace.writes += 1
                if fill > trace.max_fill:
                    trace.max_fill = fill
                if trace.record_events:
                    trace.events.append(
                        EventRecord(now, "write", token[1], 0)
                    )
                if parked_readers:
                    wake(parked_readers)
                return _OK_WRITE

        self.poll_read = poll_read  # type: ignore[method-assign]
        self.poll_write = poll_write  # type: ignore[method-assign]

    # -- wiring -------------------------------------------------------------

    def bind(self, sim) -> None:
        """Attach the simulator used to wake parked processes.

        Binding also specialises :meth:`_wake` into a closure over
        ``sim.retry``: wakes run on the poll fast path (every committed
        read/write with a parked counterparty), and the per-wake
        ``self._sim`` fetch + ``None`` test are measurable there.
        """
        self._sim = sim
        if sim is not None:
            retry = sim.retry

            def _wake(parked: Deque) -> None:
                # FIFO wake order — see the unbound method's comment.
                while parked:
                    handle = parked.popleft()
                    handle.is_parked = False
                    retry(handle)

            self._wake = _wake  # type: ignore[method-assign]
            self._specialize()

    @property
    def reader(self) -> ReadEndpoint:
        """The single read endpoint."""
        return ReadEndpoint(self, 0)

    @property
    def writer(self) -> WriteEndpoint:
        """The single write endpoint."""
        return WriteEndpoint(self, 0)

    # -- state --------------------------------------------------------------

    @property
    def fill(self) -> int:
        """Number of tokens queued (including in flight)."""
        return len(self._queue)

    @property
    def space(self) -> int:
        """Free capacity."""
        return self.capacity - len(self._queue)

    def peek_ready_time(self) -> Optional[float]:
        """Arrival time of the head token, or ``None`` if empty.

        Untimed channels (no ``transfer_latency``) do not retain arrival
        instants — a queued token is readable immediately — so they
        report ``0.0`` for any queued head.
        """
        if not self._queue:
            return None
        if self._timed:
            return self._queue[0][0]
        return 0.0

    # -- channel protocol -----------------------------------------------------

    def poll_read(self, index: int, now: float):
        if index != 0:
            raise ProtocolError(f"{self.name}: bad read interface {index}")
        queue = self._queue
        if not queue:
            return _EMPTY
        if self._timed:
            ready, token = queue[0]
            if ready > now + 1e-12:
                return ("wait", ready)
            queue.popleft()
        else:
            token = queue.popleft()
        trace = self.trace
        if trace is not None:
            # Inlined ChannelTrace.on_read: one committed read per token
            # on the engine's hottest path; the call overhead is
            # measurable.  Token is a tuple — index 1 is ``seqno``.
            if trace.fill <= 0:
                trace.on_read(now, token[1])  # raises TraceError
            trace.fill -= 1
            trace.reads += 1
            if trace.record_events:
                trace.events.append(EventRecord(now, "read", token[1], 0))
        if self._m_fill is not None:
            self._m_fill.append(now, len(queue))
        if self._parked_writers:
            self._wake(self._parked_writers)
        return ("ok", token)

    def poll_write(self, index: int, token: Token, now: float):
        if index != 0:
            raise ProtocolError(f"{self.name}: bad write interface {index}")
        queue = self._queue
        if len(queue) >= self.capacity:
            return _FULL
        if self._timed:
            queue.append((now + self._latency(token), token))
        else:
            queue.append(token)
        trace = self.trace
        if trace is not None:
            # Inlined ChannelTrace.on_write (see poll_read).
            fill = trace.fill + 1
            trace.fill = fill
            trace.writes += 1
            if fill > trace.max_fill:
                trace.max_fill = fill
            if trace.record_events:
                trace.events.append(EventRecord(now, "write", token[1], 0))
        if self._m_fill is not None:
            self._m_fill.append(now, len(queue))
            if type(token[0]) is memoryview:
                self._m_zero_copy.inc()
        if self._parked_readers:
            self._wake(self._parked_readers)
        return _OK_WRITE

    def park_reader(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_readers.append(handle)

    def park_writer(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_writers.append(handle)

    # -- internals ------------------------------------------------------------

    def _wake(self, parked: Deque) -> None:
        # FIFO wake order: the longest-parked party retries first.  Wake
        # order feeds the engine's sequence numbers and thus trace
        # identity, so it must not depend on park history (a LIFO pop
        # would reorder when two parties share a parked deque).
        sim = self._sim
        while parked:
            handle = parked.popleft()
            handle.is_parked = False
            if sim is not None:
                sim.retry(handle)

    def __repr__(self) -> str:
        return f"Fifo({self.name}, fill={self.fill}/{self.capacity})"
