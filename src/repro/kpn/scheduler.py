"""Calendar-queue event scheduling for the discrete-event engine.

A binary heap costs ``O(log n)`` per push and pop.  Discrete-event
simulators have a classic alternative — the *calendar queue* (Brown 1988):
hash events into fixed-width time buckets ("days"), keep the buckets
sorted, and pop from the earliest non-empty day.  When the bucket width
tracks the mean event spacing, pushes and pops are ``O(1)`` amortised.

This implementation is tuned for the engine's workload and its hard
determinism requirement:

* **Entries are engine event tuples** ``(time, sequence, record)`` and the
  queue pops the globally smallest ``(time, sequence)`` — *exactly* the
  order ``heapq`` would produce.  Days partition the time axis into
  disjoint half-open intervals and ``time -> int(time / width)`` is
  monotonic, so draining the lowest day first preserves time order across
  buckets; within a bucket a mini-heap orders by ``(time, sequence)``.
  Same-time events always share a bucket, so sequence tie-breaks are
  identical too.  Traces produced under either scheduler are
  byte-identical (pinned by the golden-trace suite and property tests).
* **Day directory, not a day array.**  Simulated time is unbounded and
  event horizons are sparse, so days live in a dict keyed by the integer
  day index plus a min-heap of the *distinct* day indices currently
  non-empty.  The day heap's invariant: it contains exactly the dict's
  keys — a day index is pushed only when its bucket is created and popped
  only when its bucket drains (which, because pops always take the
  minimum day, can only happen at the heap top).  No stale entries, no
  lazy deletion.
* **Automatic width recalibration.**  The width is sized to ``4 x`` the
  mean gap between a sample of queued event times (up to
  ``_SAMPLE_LIMIT``).  When the population grows past ``2 n + 16`` or
  shrinks below ``n // 4`` (``n`` = population at the last build), the
  queue rebuilds with a freshly sampled width, keeping roughly O(1)
  behaviour as the event-time distribution drifts.
* **Seamless heap fallback.**  With fewer than ``_MIN_CALENDAR`` entries,
  or when every sampled gap is zero or non-finite (all events at one
  instant; infinite horizons), bucket hashing degenerates — the queue then
  runs in an internal plain-``heapq`` mode and re-attempts bucket mode at
  the next recalibration point.  Callers never see the difference.

The engine engages a :class:`CalendarQueue` at :meth:`Simulator.run` entry
when the pending-event population reaches ``calendar_threshold`` and
spills entries back to its plain heap on exit, so tiny networks (and
``step()`` debugging) keep the lean direct heap path.
"""

from __future__ import annotations

import math
from heapq import heapify, heappop, heappush
from typing import Any, List, Optional, Tuple

Entry = Tuple[float, int, Any]

#: Below this population, bucket bookkeeping costs more than it saves.
_MIN_CALENDAR = 4
#: At most this many event times are examined to estimate the mean gap.
_SAMPLE_LIMIT = 64
#: Bucket width as a multiple of the sampled mean gap.  Wider buckets
#: amortise day-directory traffic; 4x keeps the per-bucket mini-heaps
#: shallow (a handful of entries) across the library's workloads.
_WIDTH_FACTOR = 4.0
#: In heap-fallback mode, re-attempt bucket mode after this many pushes.
#: The common reason for fallback is an unrepresentative initial sample —
#: e.g. every process's StartEvent at time zero — which becomes a
#: perfectly bucketable spread as soon as real delays are scheduled.
_FALLBACK_RETRY_PUSHES = 32


def _choose_width(times: List[float]) -> Optional[float]:
    """Bucket width from a sample of event times, or ``None`` if the
    distribution gives bucket hashing nothing to work with."""
    if len(times) < _MIN_CALENDAR:
        return None
    if len(times) > _SAMPLE_LIMIT:
        # Deterministic evenly-strided sample across the sorted range.
        stride = len(times) / _SAMPLE_LIMIT
        sample = sorted(times)
        sample = [sample[int(i * stride)] for i in range(_SAMPLE_LIMIT)]
    else:
        sample = sorted(times)
    gaps = [
        b - a
        for a, b in zip(sample, sample[1:])
        if b - a > 0.0 and math.isfinite(b - a)
    ]
    if not gaps:
        return None
    return _WIDTH_FACTOR * (sum(gaps) / len(gaps))


class CalendarQueue:
    """A calendar queue over ``(time, sequence, record)`` event entries.

    Pops the globally smallest ``(time, sequence)`` entry — the same total
    order as ``heapq`` on the same entries.
    """

    __slots__ = (
        "_days",
        "_day_heap",
        "_width",
        "_len",
        "_high",
        "_low",
        "_heap",
        "_fallback_pushes",
        "rebuilds",
    )

    def __init__(self, entries: Optional[List[Entry]] = None) -> None:
        #: Number of full rebuilds (width recalibrations) performed —
        #: surfaced for tests and diagnostics.
        self.rebuilds = 0
        self._rebuild(list(entries) if entries else [])

    # -- size ----------------------------------------------------------------

    def __len__(self) -> int:
        return self._len

    def __bool__(self) -> bool:
        return self._len > 0

    @property
    def bucket_mode(self) -> bool:
        """True when hashing into day buckets (False = heap fallback)."""
        return self._width is not None

    @property
    def width(self) -> Optional[float]:
        """Current bucket width (``None`` in heap-fallback mode)."""
        return self._width

    # -- core operations -----------------------------------------------------

    def push(self, entry: Entry) -> None:
        """Insert an entry; O(1) amortised in bucket mode."""
        self._len += 1
        width = self._width
        if width is None:
            heappush(self._heap, entry)
            self._fallback_pushes += 1
            if self._fallback_pushes >= _FALLBACK_RETRY_PUSHES:
                self._rebuild(self.drain())
                return
        else:
            day = int(entry[0] / width)
            days = self._days
            bucket = days.get(day)
            if bucket is None:
                days[day] = [entry]
                heappush(self._day_heap, day)
            else:
                heappush(bucket, entry)
        if self._len > self._high:
            self._rebuild(self.drain())

    def peek(self) -> Entry:
        """The smallest ``(time, sequence)`` entry, without removing it."""
        if self._width is None:
            return self._heap[0]
        return self._days[self._day_heap[0]][0]

    def pop(self) -> Entry:
        """Remove and return the smallest ``(time, sequence)`` entry."""
        if self._width is None:
            entry = heappop(self._heap)
            self._len -= 1
        else:
            day_heap = self._day_heap
            day = day_heap[0]
            days = self._days
            bucket = days[day]
            entry = heappop(bucket)
            if not bucket:
                del days[day]
                heappop(day_heap)
            self._len -= 1
        if self._len < self._low:
            self._rebuild(self.drain())
        return entry

    def drain(self) -> List[Entry]:
        """Remove and return all entries (unsorted).  Leaves the queue
        empty but usable."""
        if self._width is None:
            entries = self._heap
            self._heap = []
        else:
            entries = []
            for bucket in self._days.values():
                entries.extend(bucket)
            self._days = {}
            self._day_heap = []
        self._len = 0
        return entries

    # -- internals -----------------------------------------------------------

    def _rebuild(self, entries: List[Entry]) -> None:
        """Re-seat ``entries`` under a freshly sampled bucket width."""
        self.rebuilds += 1
        n = len(entries)
        self._len = n
        self._high = 2 * n + 16
        self._low = n // 4
        self._fallback_pushes = 0
        width = _choose_width([e[0] for e in entries])
        self._width = width
        if width is None:
            heapify(entries)
            self._heap = entries
            self._days = {}
            self._day_heap = []
            return
        self._heap = []
        days: dict = {}
        for entry in entries:
            day = int(entry[0] / width)
            bucket = days.get(day)
            if bucket is None:
                days[day] = [entry]
            else:
                bucket.append(entry)
        for bucket in days.values():
            heapify(bucket)
        self._days = days
        day_heap = list(days)
        heapify(day_heap)
        self._day_heap = day_heap

    def __repr__(self) -> str:
        mode = (
            f"buckets={len(self._days)}, width={self._width:.6g}"
            if self._width is not None
            else "heap-fallback"
        )
        return f"CalendarQueue(len={self._len}, {mode})"
