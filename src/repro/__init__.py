"""repro — reproduction of "An Efficient Real Time Fault Detection and
Tolerance Framework Validated on the Intel SCC Processor" (DAC 2014).

Public API tour
---------------

Timing models and design-time analysis (Sections 2-3.4)::

    from repro import PJD, size_duplicated_network
    sizing = size_duplicated_network(producer, replica_ins, replica_outs,
                                     consumer)

The fault-tolerance framework (Sections 3.1-3.3)::

    from repro import NetworkBlueprint, build_duplicated, build_reference
    duplicated = build_duplicated(blueprint, sizing)

Fault injection and detection (Section 4)::

    from repro import FaultSpec, FaultInjector, FAIL_STOP

The evaluation applications and experiment harnesses::

    from repro.apps import MjpegDecoderApp, AdpcmApp, H264EncoderApp
    from repro.experiments import run_table2, render_table2

See README.md for a quickstart and DESIGN.md for the system inventory.
"""

from repro.rtc import (
    PJD,
    SizingResult,
    divergence_threshold,
    fifo_capacity,
    initial_fill,
    size_duplicated_network,
)
from repro.kpn import (
    Fifo,
    Network,
    PeriodicConsumer,
    PeriodicSource,
    Process,
    Simulator,
    Token,
)
from repro.core import (
    DetectionLog,
    DuplicatedNetwork,
    FaultReport,
    NetworkBlueprint,
    ReferenceNetwork,
    ReplicatorChannel,
    SelectorChannel,
    build_duplicated,
    build_reference,
    check_equivalence,
)
from repro.faults import FAIL_STOP, RATE_DEGRADE, FaultInjector, FaultSpec

__version__ = "1.0.0"

__all__ = [
    "PJD",
    "SizingResult",
    "divergence_threshold",
    "fifo_capacity",
    "initial_fill",
    "size_duplicated_network",
    "Fifo",
    "Network",
    "PeriodicConsumer",
    "PeriodicSource",
    "Process",
    "Simulator",
    "Token",
    "DetectionLog",
    "DuplicatedNetwork",
    "FaultReport",
    "NetworkBlueprint",
    "ReferenceNetwork",
    "ReplicatorChannel",
    "SelectorChannel",
    "build_duplicated",
    "build_reference",
    "check_equivalence",
    "FAIL_STOP",
    "RATE_DEGRADE",
    "FaultInjector",
    "FaultSpec",
    "__version__",
]
