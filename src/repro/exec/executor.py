"""The process-pool sweep executor.

Experiments hand the executor a *list* of :class:`TaskSpec` and get back
the matching list of :class:`TaskResult`, in input order, regardless of
how (or whether) the tasks ran in parallel:

* ``jobs <= 1`` — inline serial execution, no pool, no IPC (the default;
  also the automatic fallback when the platform lacks ``fork``);
* ``jobs > 1`` — a persistent :class:`~repro.exec.pool.WorkerPool` fans
  chunks of tasks across cores.  The pool **survives across runs**: a
  campaign or table harness that calls :meth:`run` repeatedly pays fork
  startup once, and workers keep their warm per-process solver state
  (:func:`~repro.exec.worker.worker_solver_context`) from batch to
  batch.  Close the executor (or use it as a context manager) when done;
  one-shot :func:`run_sweep` calls do this automatically.

Before anything executes, the batch is **scheduled**:

1. *Dedup* — pending specs are grouped by content digest; each unique
   digest executes exactly once per batch and duplicates share the
   leader's result (input order of the returned list is untouched).
2. *Bulk cache consult* — with a :class:`~repro.exec.cache.ResultCache`
   attached, the unique digests are looked up in one pass; hits (and
   their duplicates) never reach the pool.
3. *Parallel presolve* — specs still lacking a solved sizing are fanned
   across the pool (:func:`~repro.exec.worker.presolve_chunk`), sharing
   per-worker warm-start hints, instead of solving serially in the
   parent.  Digests are always computed from the *original* specs, so
   presolving never perturbs cache keys.
4. *Sizing-group ordering + adaptive chunking* — tasks are ordered so
   chunk-mates pose the same sizing problem (warm solver state hits),
   then chunked to a target of :data:`TARGET_CHUNK_S` seconds using an
   EWMA of measured per-task latency that persists across batches;
   an explicit ``chunksize`` overrides, and the first-ever batch falls
   back to the static :data:`_CHUNK_WAVES` heuristic.

Progress is observable through a
:class:`~repro.obs.metrics.MetricsRegistry` (``sweep.*`` counters and
the per-task wall-time histogram), a ``progress`` callback (called once
per finished task with a **monotone** completed count), and/or a
:class:`~repro.obs.ledger.LedgerWriter` — the streaming path: every
submission and completion is appended to the run ledger as it happens,
and each result's mergeable :class:`~repro.obs.sketch.MetricsSnapshot`
is folded into the executor's fleet-wide ``metrics`` aggregate
(extending the ``COPY_STATS`` delta pattern), so campaign-scale
percentiles exist without shipping raw series.

Because every run is a pure function of its spec (seeded RNG only — see
``tests/experiments/test_runner.py::TestSeedPurity``), parallel, serial,
deduplicated and cached executions of the same sweep produce identical
results (see DESIGN.md §11 for the shared-result determinism rule).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.pool import WorkerPool, fork_available
from repro.exec.results import TaskResult
from repro.exec.taskspec import TaskSpec
from repro.exec.worker import execute_task, presolve_chunk, run_chunk

#: Chunks per worker per sweep for the *first* batch (no latency data
#: yet): larger spreads load, smaller amortises IPC better.
_CHUNK_WAVES = 4

#: Adaptive chunking aims each chunk at this much work — long enough to
#: amortise pickling/IPC, short enough to bound the straggler tail on
#: heterogeneous scenario matrices.
TARGET_CHUNK_S = 0.25

#: EWMA smoothing factor for the measured per-task latency.
_EWMA_ALPHA = 0.3

ProgressCallback = Callable[[int, int, TaskSpec, TaskResult], None]


def _fork_available() -> bool:
    return fork_available()


@dataclass
class SweepStats:
    """What one sweep did, and how long each part took."""

    tasks: int = 0
    executed: int = 0
    cache_hits: int = 0
    #: Tasks that shared another task's result (same content digest).
    deduped: int = 0
    #: Distinct content digests in the batch (== tasks when dedup off).
    unique: int = 0
    #: Sizings solved by the executor's presolve pass.
    presolved: int = 0
    errors: int = 0
    jobs: int = 1
    #: Chunk size the pool actually used (0 = inline / nothing pending).
    chunksize: int = 0
    wall_time_s: float = 0.0
    task_wall_s: List[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "tasks": self.tasks,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "deduped": self.deduped,
            "unique": self.unique,
            "presolved": self.presolved,
            "errors": self.errors,
            "jobs": self.jobs,
            "chunksize": self.chunksize,
            "wall_time_s": self.wall_time_s,
        }


class SweepExecutor:
    """Reusable sweep runner; ``stats`` describes the last :meth:`run`.

    ``dedup=False`` disables digest grouping (every spec executes even
    when identical to another); ``persistent=False`` tears the worker
    pool down after every run (the pre-persistent-pool behaviour, kept
    for A/B benchmarking); ``target_chunk_s=None`` disables adaptive
    chunking in favour of the static first-batch heuristic.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        registry=None,
        chunksize: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        ledger=None,
        dedup: bool = True,
        persistent: bool = True,
        target_chunk_s: Optional[float] = TARGET_CHUNK_S,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.registry = registry
        self.chunksize = chunksize
        self.progress = progress
        self.ledger = ledger
        self.dedup = dedup
        self.persistent = persistent
        self.target_chunk_s = target_chunk_s
        self.stats = SweepStats()
        #: The persistent worker pool (created lazily on the first
        #: parallel run; ``None`` until then and after :meth:`close`).
        self.pool: Optional[WorkerPool] = None
        #: EWMA of measured per-task wall time, persisted across runs —
        #: the adaptive chunker's latency estimate.
        self.ewma_task_s: Optional[float] = None
        self._solver_context = None
        self._done = 0
        # Fleet-wide mergeable aggregate over every result this executor
        # has seen (cache hits included); reset per run().
        from repro.obs.sketch import MetricsSnapshot

        self.metrics = MetricsSnapshot()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Shut down the worker pool (idempotent).  The executor stays
        usable — a later :meth:`run` forks a fresh pool."""
        if self.pool is not None:
            self.pool.close()
            self.pool = None

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:
        try:
            self.close()
        except Exception:
            pass

    # -- public API --------------------------------------------------------

    def run(self, specs: Sequence[TaskSpec]) -> List[TaskResult]:
        """Execute ``specs``; returns results in input order."""
        from repro.obs.sketch import MetricsSnapshot

        started = time.perf_counter()
        specs = list(specs)
        stats = SweepStats(tasks=len(specs), jobs=self.jobs)
        results: List[Optional[TaskResult]] = [None] * len(specs)
        self.metrics = MetricsSnapshot()
        self._done = 0
        if self.ledger is not None:
            self.ledger.sweep_start(len(specs), self.jobs)

        digests: List[Optional[str]] = [None] * len(specs)
        if self.cache is not None or self.dedup:
            for index, spec in enumerate(specs):
                digests[index] = spec.digest()
        if self.ledger is not None:
            for index, spec in enumerate(specs):
                self.ledger.task_submitted(index, spec.kind,
                                           digest=digests[index])

        # Dedup grouping: the first index carrying a digest leads; later
        # occurrences follow (share the leader's result).
        leaders: List[int] = []
        followers: Dict[int, List[int]] = {}
        if self.dedup:
            leader_of: Dict[str, int] = {}
            for index in range(len(specs)):
                leader = leader_of.setdefault(digests[index], index)
                if leader == index:
                    leaders.append(index)
                else:
                    followers.setdefault(leader, []).append(index)
        else:
            leaders = list(range(len(specs)))
        stats.unique = len(leaders)
        stats.deduped = len(specs) - len(leaders)

        # Bulk cache consult over the unique digests only.
        pending: List[int] = []
        if self.cache is not None:
            hits = self.cache.get_many(
                [digests[index] for index in leaders]
            )
        else:
            hits = {}
        for index in leaders:
            hit = hits.get(digests[index]) if digests[index] else None
            if hit is not None:
                self._finish(index, specs[index], hit, stats,
                             results, cache_hit=True)
                self._finish_followers(index, specs, followers, hit,
                                       stats, results)
            else:
                pending.append(index)

        try:
            if pending:
                use_pool = (
                    self.jobs > 1 and len(pending) > 1 and _fork_available()
                )
                exec_specs = self._presolve(specs, pending, stats, use_pool)
                if use_pool:
                    self._run_pool(specs, exec_specs, pending, digests,
                                   followers, results, stats)
                else:
                    self._run_inline(specs, exec_specs, pending, digests,
                                     followers, results, stats)
        finally:
            if not self.persistent:
                self.close()

        stats.wall_time_s = time.perf_counter() - started
        self._flush_metrics(stats)
        self.stats = stats
        if self.ledger is not None:
            self.ledger.sweep_end(stats.as_dict())
        return results  # type: ignore[return-value]

    # -- scheduling --------------------------------------------------------

    def _presolve(self, specs, pending, stats, use_pool):
        """Attach solved sizings to pending specs that lack one.

        Returns ``{index: spec-to-execute}`` — presolved copies where a
        solve happened, the original spec otherwise.  Digests were
        computed from the originals before this runs, so cache keys are
        unaffected; warm solves are bit-identical to cold ones, so
        results are unaffected too.
        """
        exec_specs = {index: specs[index] for index in pending}
        unsized = [
            index for index in pending if specs[index].sizing is None
        ]
        if not unsized:
            return exec_specs
        stats.presolved = len(unsized)
        if use_pool and len(unsized) > 1:
            order = self._sizing_order(specs, unsized)
            chunksize = max(1, -(-len(order) // self.jobs))
            payloads = [
                [(index, specs[index]) for index in order[at:at + chunksize]]
                for at in range(0, len(order), chunksize)
            ]
            self._ensure_pool()
            for _, solved in self.pool.map_chunks(presolve_chunk, payloads):
                for index, sizing in solved:
                    exec_specs[index] = dataclasses.replace(
                        specs[index], sizing=sizing
                    )
        else:
            context = self._parent_solver_context()
            for index in unsized:
                from repro.exec.taskspec import build_app

                sizing = build_app(specs[index]).sizing(context=context)
                exec_specs[index] = dataclasses.replace(
                    specs[index], sizing=sizing
                )
        return exec_specs

    def _parent_solver_context(self):
        if self._solver_context is None:
            from repro.rtc.sizing import SolverContext

            self._solver_context = SolverContext()
        return self._solver_context

    @staticmethod
    def _sizing_order(specs, pending):
        """Pending indices, stably grouped by sizing problem.

        Groups are ordered by first occurrence and indices stay sorted
        inside each group, so the ordering is a pure function of the
        spec list — chunk-mates share warm solver state without the
        schedule depending on timing.
        """
        first_seen: Dict[str, int] = {}
        for index in pending:
            first_seen.setdefault(specs[index].sizing_group(), index)
        return sorted(
            pending,
            key=lambda i: (first_seen[specs[i].sizing_group()], i),
        )

    def _chunksize(self, n: int, workers: int) -> int:
        """Tasks per chunk for a batch of ``n`` pending tasks.

        An explicit ``chunksize`` always wins.  Otherwise the EWMA of
        measured per-task latency sizes chunks to ``target_chunk_s``
        seconds of work (clamped so every worker gets at least one
        chunk); with no latency data yet (first batch ever) the static
        waves heuristic applies.
        """
        if self.chunksize is not None:
            return self.chunksize
        ewma = self.ewma_task_s
        if self.target_chunk_s is not None and ewma and ewma > 0:
            per_chunk = max(1, round(self.target_chunk_s / ewma))
            return max(1, min(per_chunk, -(-n // workers)))
        return max(1, -(-n // (workers * _CHUNK_WAVES)))

    def _observe_latency(self, wall_s: float) -> None:
        if self.ewma_task_s is None:
            self.ewma_task_s = wall_s
        else:
            self.ewma_task_s += _EWMA_ALPHA * (wall_s - self.ewma_task_s)

    def _ensure_pool(self) -> None:
        if self.pool is None:
            self.pool = WorkerPool(self.jobs)

    # -- execution paths ---------------------------------------------------

    def _run_inline(self, specs, exec_specs, pending, digests,
                    followers, results, stats) -> None:
        for index in pending:
            result = execute_task(exec_specs[index])
            self._complete(index, specs, digests, followers,
                           result, stats, results)

    def _run_pool(self, specs, exec_specs, pending, digests,
                  followers, results, stats) -> None:
        workers = min(self.jobs, len(pending))
        order = self._sizing_order(specs, pending)
        chunksize = self._chunksize(len(order), workers)
        stats.chunksize = chunksize
        chunks = [
            [(index, exec_specs[index])
             for index in order[at:at + chunksize]]
            for at in range(0, len(order), chunksize)
        ]
        self._ensure_pool()
        for _, chunk_results in self.pool.map_chunks(run_chunk, chunks):
            for index, result in chunk_results:
                self._merge_copy_stats(result)
                self._complete(index, specs, digests, followers,
                               result, stats, results)

    def _complete(self, index, specs, digests, followers,
                  result, stats, results) -> None:
        """Bookkeeping for one freshly executed leader: persist to the
        cache (under the original spec's digest), account it, and
        resolve every follower sharing its digest."""
        if self.cache is not None and digests[index] is not None:
            self.cache.put(digests[index], result)
        self._observe_latency(result.wall_time_s)
        self._finish(index, specs[index], result, stats, results,
                     executed=True)
        self._finish_followers(index, specs, followers, result,
                               stats, results)

    def _finish_followers(self, leader, specs, followers, result,
                          stats, results) -> None:
        for index in followers.get(leader, ()):
            self._finish(index, specs[index], result, stats, results,
                         deduped=True)

    def _finish(self, index, spec, result, stats, results, *,
                executed: bool = False, cache_hit: bool = False,
                deduped: bool = False) -> None:
        """Deliver one finished task: slot the result, stream it, and
        fire the progress callback with a monotone completed count."""
        results[index] = result
        self._stream(index, result, cache_hit=cache_hit, deduped=deduped)
        if executed:
            stats.executed += 1
            stats.task_wall_s.append(result.wall_time_s)
            if not result.ok:
                stats.errors += 1
        elif cache_hit:
            stats.cache_hits += 1
        self._done += 1
        if self.registry is not None:
            self.registry.counter("sweep.completed").inc()
            self.registry.histogram("sweep.task_wall_ms").observe(
                result.wall_time_s * 1e3
            )
        if self.progress is not None:
            self.progress(self._done, stats.tasks, spec, result)

    def _stream(self, index, result, cache_hit: bool = False,
                deduped: bool = False) -> None:
        """Streaming bookkeeping for one completed task: fold its
        mergeable snapshot into the fleet aggregate and append the
        completion record to the run ledger (when one is attached)."""
        if result.metrics:
            from repro.obs.sketch import MetricsSnapshot

            self.metrics.merge(MetricsSnapshot.from_dict(result.metrics))
        if self.ledger is not None:
            self.ledger.task_finished(index, result, cache_hit=cache_hit,
                                      deduped=deduped)

    def _merge_copy_stats(self, result) -> None:
        """Credit a pool worker's zero-copy counters to this process.

        Workers mutate their *own* ``COPY_STATS`` global; without this
        fold the parent's accounting would silently read zero for every
        parallel sweep.  Inline execution needs no merge — it already
        counted in-process — so only the pool path calls this.
        """
        if result.copy_stats:
            from repro.kpn.tokens import COPY_STATS

            COPY_STATS.merge(result.copy_stats)

    # -- bookkeeping -------------------------------------------------------

    def _flush_metrics(self, stats) -> None:
        if self.registry is None:
            return
        self.registry.counter("sweep.tasks").inc(stats.tasks)
        self.registry.counter("sweep.executed").inc(stats.executed)
        self.registry.counter("sweep.cache_hits").inc(stats.cache_hits)
        self.registry.counter("sweep.errors").inc(stats.errors)
        self.registry.counter("sweep.dedup.unique").inc(stats.unique)
        self.registry.counter("sweep.dedup.duplicates").inc(stats.deduped)
        self.registry.counter("sweep.presolve.solved").inc(stats.presolved)
        if self.pool is not None:
            pool_stats = self.pool.stats()
            self.registry.gauge("sweep.pool.forks").set(pool_stats["forks"])
            self.registry.gauge("sweep.pool.respawns").set(
                pool_stats["respawns"]
            )
            self.registry.gauge("sweep.pool.batches").set(
                pool_stats["batches"]
            )


def run_sweep(
    specs: Sequence[TaskSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    registry=None,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    ledger=None,
    dedup: bool = True,
    executor: Optional[SweepExecutor] = None,
) -> List[TaskResult]:
    """One-shot convenience wrapper around :class:`SweepExecutor`.

    Pass an ``executor`` to reuse a persistent one (its warm pool and
    latency estimate survive; the other arguments are ignored in that
    case).  Otherwise a throwaway executor runs the sweep and its pool
    is torn down before returning — one-shots never leak workers.
    """
    if executor is not None:
        return executor.run(specs)
    with SweepExecutor(
        jobs=jobs,
        cache=cache,
        registry=registry,
        chunksize=chunksize,
        progress=progress,
        ledger=ledger,
        dedup=dedup,
    ) as one_shot:
        return one_shot.run(specs)
