"""The process-pool sweep executor.

Experiments hand the executor a *list* of :class:`TaskSpec` and get back
the matching list of :class:`TaskResult`, in input order, regardless of
how (or whether) the tasks ran in parallel:

* ``jobs <= 1`` — inline serial execution, no pool, no IPC (the default;
  also the automatic fallback when the platform lacks ``fork``);
* ``jobs > 1`` — a ``ProcessPoolExecutor`` fans chunks of tasks across
  cores.  Chunked submission amortises pickling/IPC per task; results
  are slotted back by task index, so ordering is deterministic by
  construction.

With a :class:`~repro.exec.cache.ResultCache` attached, cached digests
short-circuit before any submission and fresh results are persisted on
completion.  Progress is observable through a
:class:`~repro.obs.metrics.MetricsRegistry` (``sweep.*`` counters and
the per-task wall-time histogram), a ``progress`` callback, and/or a
:class:`~repro.obs.ledger.LedgerWriter` — the streaming path: every
submission and completion is appended to the run ledger as it happens,
and each result's mergeable :class:`~repro.obs.sketch.MetricsSnapshot`
is folded into the executor's fleet-wide ``metrics`` aggregate
(extending the ``COPY_STATS`` delta pattern), so campaign-scale
percentiles exist without shipping raw series.

Because every run is a pure function of its spec (seeded RNG only — see
``tests/experiments/test_runner.py::TestSeedPurity``), parallel, serial
and cached executions of the same sweep produce identical results.
"""

from __future__ import annotations

import multiprocessing
import time
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.exec.cache import ResultCache
from repro.exec.results import TaskResult
from repro.exec.taskspec import TaskSpec
from repro.exec.worker import execute_task, run_chunk

#: Chunks per worker per sweep: larger spreads load, smaller amortises
#: IPC better.  Four keeps the pool busy even with skewed task times.
_CHUNK_WAVES = 4

ProgressCallback = Callable[[int, int, TaskSpec, TaskResult], None]


def _fork_available() -> bool:
    return "fork" in multiprocessing.get_all_start_methods()


@dataclass
class SweepStats:
    """What one sweep did, and how long each part took."""

    tasks: int = 0
    executed: int = 0
    cache_hits: int = 0
    errors: int = 0
    jobs: int = 1
    wall_time_s: float = 0.0
    task_wall_s: List[float] = field(default_factory=list)

    def as_dict(self) -> dict:
        return {
            "tasks": self.tasks,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "errors": self.errors,
            "jobs": self.jobs,
            "wall_time_s": self.wall_time_s,
        }


class SweepExecutor:
    """Reusable sweep runner; ``stats`` describes the last :meth:`run`."""

    def __init__(
        self,
        jobs: int = 1,
        cache: Optional[ResultCache] = None,
        registry=None,
        chunksize: Optional[int] = None,
        progress: Optional[ProgressCallback] = None,
        ledger=None,
    ) -> None:
        if jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache
        self.registry = registry
        self.chunksize = chunksize
        self.progress = progress
        self.ledger = ledger
        self.stats = SweepStats()
        # Fleet-wide mergeable aggregate over every result this executor
        # has seen (cache hits included); reset per run().
        from repro.obs.sketch import MetricsSnapshot

        self.metrics = MetricsSnapshot()

    # -- public API --------------------------------------------------------

    def run(self, specs: Sequence[TaskSpec]) -> List[TaskResult]:
        """Execute ``specs``; returns results in input order."""
        from repro.obs.sketch import MetricsSnapshot

        started = time.perf_counter()
        specs = list(specs)
        stats = SweepStats(tasks=len(specs), jobs=self.jobs)
        results: List[Optional[TaskResult]] = [None] * len(specs)
        self.metrics = MetricsSnapshot()
        if self.ledger is not None:
            self.ledger.sweep_start(len(specs), self.jobs)

        digests: List[Optional[str]] = [None] * len(specs)
        pending: List[int] = []
        for index, spec in enumerate(specs):
            if self.cache is not None:
                digests[index] = spec.digest()
            if self.ledger is not None:
                self.ledger.task_submitted(index, spec.kind,
                                           digest=digests[index])
            if digests[index] is not None:
                hit = self.cache.get(digests[index])
                if hit is not None:
                    results[index] = hit
                    stats.cache_hits += 1
                    self._stream(index, hit, cache_hit=True)
                    self._report(stats, spec, hit)
                    continue
            pending.append(index)

        if pending:
            use_pool = (
                self.jobs > 1 and len(pending) > 1 and _fork_available()
            )
            if use_pool:
                self._run_pool(specs, pending, results, stats)
            else:
                self._run_inline(specs, pending, results, stats)
            if self.cache is not None:
                for index in pending:
                    self.cache.put(digests[index], results[index])

        stats.wall_time_s = time.perf_counter() - started
        self._flush_metrics(stats)
        self.stats = stats
        if self.ledger is not None:
            self.ledger.sweep_end(stats.as_dict())
        return results  # type: ignore[return-value]

    # -- execution paths ---------------------------------------------------

    def _run_inline(self, specs, pending, results, stats) -> None:
        for index in pending:
            result = execute_task(specs[index])
            results[index] = result
            self._stream(index, result)
            self._account(stats, specs[index], result)

    def _run_pool(self, specs, pending, results, stats) -> None:
        workers = min(self.jobs, len(pending))
        chunksize = self.chunksize or max(
            1, -(-len(pending) // (workers * _CHUNK_WAVES))
        )
        chunks = [
            [(index, specs[index]) for index in pending[at:at + chunksize]]
            for at in range(0, len(pending), chunksize)
        ]
        context = multiprocessing.get_context("fork")
        with ProcessPoolExecutor(
            max_workers=workers, mp_context=context
        ) as pool:
            futures = [pool.submit(run_chunk, chunk) for chunk in chunks]
            for future in as_completed(futures):
                for index, result in future.result():
                    results[index] = result
                    self._merge_copy_stats(result)
                    self._stream(index, result)
                    self._account(stats, specs[index], result)

    def _stream(self, index, result, cache_hit: bool = False) -> None:
        """Streaming bookkeeping for one completed task: fold its
        mergeable snapshot into the fleet aggregate and append the
        completion record to the run ledger (when one is attached)."""
        if result.metrics:
            from repro.obs.sketch import MetricsSnapshot

            self.metrics.merge(MetricsSnapshot.from_dict(result.metrics))
        if self.ledger is not None:
            self.ledger.task_finished(index, result, cache_hit=cache_hit)

    def _merge_copy_stats(self, result) -> None:
        """Credit a pool worker's zero-copy counters to this process.

        Workers mutate their *own* ``COPY_STATS`` global; without this
        fold the parent's accounting would silently read zero for every
        parallel sweep.  Inline execution needs no merge — it already
        counted in-process — so only the pool path calls this.
        """
        if result.copy_stats:
            from repro.kpn.tokens import COPY_STATS

            COPY_STATS.merge(result.copy_stats)

    # -- bookkeeping -------------------------------------------------------

    def _account(self, stats, spec, result) -> None:
        stats.executed += 1
        stats.task_wall_s.append(result.wall_time_s)
        if not result.ok:
            stats.errors += 1
        self._report(stats, spec, result)

    def _report(self, stats, spec, result) -> None:
        done = stats.executed + stats.cache_hits
        if self.registry is not None:
            self.registry.counter("sweep.completed").inc()
            self.registry.histogram("sweep.task_wall_ms").observe(
                result.wall_time_s * 1e3
            )
        if self.progress is not None:
            self.progress(done, stats.tasks, spec, result)

    def _flush_metrics(self, stats) -> None:
        if self.registry is None:
            return
        self.registry.counter("sweep.tasks").inc(stats.tasks)
        self.registry.counter("sweep.executed").inc(stats.executed)
        self.registry.counter("sweep.cache_hits").inc(stats.cache_hits)
        self.registry.counter("sweep.errors").inc(stats.errors)


def run_sweep(
    specs: Sequence[TaskSpec],
    jobs: int = 1,
    cache: Optional[ResultCache] = None,
    registry=None,
    chunksize: Optional[int] = None,
    progress: Optional[ProgressCallback] = None,
    ledger=None,
) -> List[TaskResult]:
    """One-shot convenience wrapper around :class:`SweepExecutor`."""
    return SweepExecutor(
        jobs=jobs,
        cache=cache,
        registry=registry,
        chunksize=chunksize,
        progress=progress,
        ledger=ledger,
    ).run(specs)
