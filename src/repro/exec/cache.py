"""On-disk content-addressed cache of executed task results.

Entries live under ``.repro-cache/`` (override with the
``REPRO_CACHE_DIR`` environment variable or the ``root`` parameter),
sharded by digest prefix::

    .repro-cache/ab/abcdef....pkl

Each entry is a pickle of ``{"schema": ..., "digest": ..., "result":
TaskResult}``.  The digest is the :meth:`TaskSpec.digest` content hash,
so a cache hit short-circuits the simulator entirely: re-running a sweep
after an unrelated edit replays stored results instead of recomputing.

Robustness rules (all covered by ``tests/exec/test_cache.py``):

* a corrupted / truncated / unreadable entry is **deleted and treated as
  a miss** — the run recomputes and overwrites it;
* a schema-version mismatch (:data:`CACHE_SCHEMA_VERSION` bump) is a
  miss, as is a digest mismatch (defends against hand-renamed files);
* writes are atomic (temp file + ``os.replace``), so concurrent sweeps
  sharing a cache directory never observe half-written entries;
* ``refresh=True`` ignores existing entries but still stores new ones
  (the ``--refresh`` escape hatch); disable caching entirely by passing
  ``cache=None`` to the executor (``--no-cache``).
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import Dict, Iterable, Optional, Union

from repro.exec.results import TaskResult

#: Version of the on-disk entry format (including the TaskResult shape).
#: Bump whenever either changes; old entries then recompute in place.
#: v2: TaskResult grew ``metrics`` / ``worker`` (streaming snapshots).
CACHE_SCHEMA_VERSION = 2

#: Default cache directory, relative to the current working directory.
DEFAULT_CACHE_DIR = ".repro-cache"

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"


class ResultCache:
    """Digest-keyed persistent store of :class:`TaskResult` objects."""

    def __init__(
        self,
        root: Union[str, Path, None] = None,
        refresh: bool = False,
    ) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV, DEFAULT_CACHE_DIR)
        self.root = Path(root)
        self.refresh = refresh
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.invalidated = 0

    def _path(self, digest: str) -> Path:
        return self.root / digest[:2] / f"{digest}.pkl"

    def get(self, digest: str) -> Optional[TaskResult]:
        """The stored result for ``digest``, or ``None`` on miss."""
        if self.refresh:
            self.misses += 1
            return None
        path = self._path(digest)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            # Truncated, corrupted or unreadable entry: drop it and
            # recompute rather than crash the sweep.
            self._discard(path)
            self.misses += 1
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("schema") != CACHE_SCHEMA_VERSION
            or payload.get("digest") != digest
            or not isinstance(payload.get("result"), TaskResult)
        ):
            self._discard(path)
            self.misses += 1
            return None
        self.hits += 1
        return payload["result"]

    def get_many(
        self, digests: Iterable[str]
    ) -> Dict[str, TaskResult]:
        """Bulk lookup: ``{digest: result}`` for every digest that hits.

        The executor consults the cache once per batch with the full
        set of unique pending digests; misses are simply absent from
        the returned mapping.  Duplicate digests in the input cost one
        lookup (and count one hit/miss) each time they appear — pass
        unique digests for exact counters.
        """
        found: Dict[str, TaskResult] = {}
        for digest in digests:
            result = self.get(digest)
            if result is not None:
                found[digest] = result
        return found

    def put(self, digest: str, result: TaskResult) -> None:
        """Store ``result`` under ``digest`` (atomic replace)."""
        path = self._path(digest)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "schema": CACHE_SCHEMA_VERSION,
            "digest": digest,
            "result": result,
        }
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=".tmp-", suffix=".pkl"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(payload, handle, pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stores += 1

    def _discard(self, path: Path) -> None:
        self.invalidated += 1
        try:
            os.unlink(path)
        except OSError:
            pass

    def stats(self) -> Dict[str, int]:
        """Hit/miss/store counters for reports and tests."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "invalidated": self.invalidated,
        }

    # -- size accounting ---------------------------------------------------

    def _entries(self):
        """All entry files as ``(mtime, size, path)``, oldest first.

        In-flight temp files are skipped (they are renamed or unlinked
        by their writer); files that vanish mid-scan (a concurrent
        prune) are skipped too.
        """
        entries = []
        if not self.root.is_dir():
            return entries
        for path in self.root.glob("*/*.pkl"):
            if path.name.startswith(".tmp-"):
                continue
            try:
                stat = path.stat()
            except OSError:
                continue
            entries.append((stat.st_mtime, stat.st_size, path))
        entries.sort(key=lambda entry: (entry[0], str(entry[2])))
        return entries

    def size_stats(self) -> Dict[str, int]:
        """On-disk footprint: entry count and total bytes."""
        entries = self._entries()
        return {
            "entries": len(entries),
            "bytes": sum(size for _, size, _ in entries),
        }

    def clear(self) -> int:
        """Delete every entry; returns the number removed."""
        removed = 0
        for _, _, path in self._entries():
            try:
                os.unlink(path)
            except OSError:
                continue
            removed += 1
        self._sweep_empty_shards()
        return removed

    def prune(self, max_bytes: int) -> Dict[str, int]:
        """Evict oldest-first until the cache fits in ``max_bytes``.

        Eviction order is modification time (a store refreshes its
        entry's mtime via the atomic replace, so recently re-stored
        results survive).  Returns ``{"removed": n, "bytes": remaining}``.
        """
        entries = self._entries()
        total = sum(size for _, size, _ in entries)
        removed = 0
        for _, size, path in entries:
            if total <= max_bytes:
                break
            try:
                os.unlink(path)
            except OSError:
                continue
            total -= size
            removed += 1
        self._sweep_empty_shards()
        return {"removed": removed, "bytes": total}

    def _sweep_empty_shards(self) -> None:
        if not self.root.is_dir():
            return
        for shard in self.root.iterdir():
            if shard.is_dir():
                try:
                    shard.rmdir()  # only succeeds when empty
                except OSError:
                    pass

    def __repr__(self) -> str:
        return (
            f"ResultCache(root={str(self.root)!r}, hits={self.hits}, "
            f"misses={self.misses}, stores={self.stores})"
        )
