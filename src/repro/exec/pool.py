"""Persistent warm worker pool for campaign-scale sweeps.

A :class:`WorkerPool` is a process pool that **survives across sweep
batches**: the :class:`~repro.exec.executor.SweepExecutor` that owns one
keeps it alive from one ``run()`` to the next, so campaign rounds, table
sweeps and DSE generations stop paying fork/import startup per batch and
start accumulating **per-worker warm state** instead:

* the pool forks (copy-on-write) from a parent that has already been
  *warmed* — :func:`warm_parent` pre-imports the experiment stack and
  materializes the application registry, so every worker is born with
  the hot modules resident and the global RTC memos it inherits;
* each worker process keeps a long-lived
  :class:`~repro.rtc.sizing.SolverContext`
  (:func:`repro.exec.worker.worker_solver_context`) that warms across
  chunks *and across batches* — repeated sizing solves in a campaign
  hit the same per-worker memo round after round.

Lifecycle is explicit: :meth:`close` (or the context-manager form)
shuts the workers down; an unclosed pool is also torn down defensively
on garbage collection.  A **crashed worker** (``os._exit``, segfault,
OOM-kill) breaks the underlying ``ProcessPoolExecutor``; the pool then
respawns a fresh set of workers and transparently resubmits every chunk
that had not been delivered, up to ``max_respawns`` times per batch
(then :class:`PoolCrashError`).  Resubmission is safe because every
chunk is a pure function of its payload — a chunk that completed but
was not yet consumed when the pool broke merely re-executes to the
identical result.

The pool itself is task-agnostic: :meth:`map_chunks` ships arbitrary
``(fn, payload)`` work.  The executor uses it for both task chunks
(:func:`repro.exec.worker.run_chunk`) and parallel presolve chunks
(:func:`repro.exec.worker.presolve_chunk`).
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Any, Callable, Iterator, List, Optional, Tuple


class PoolCrashError(RuntimeError):
    """Workers kept dying faster than the pool could respawn them."""


def fork_available() -> bool:
    """Whether this platform supports the fork start method the pool
    needs for copy-on-write warm-state seeding."""
    return "fork" in multiprocessing.get_all_start_methods()


def warm_parent() -> int:
    """Warm the parent process before the first fork.

    Pre-imports the experiment harness stack (the modules every task
    touches) and materializes the application registry — one instance
    per registered application class — so forked workers inherit loaded
    modules, constructed PJD models and the process-global RTC curve
    memos copy-on-write instead of each rebuilding them on first use.

    Returns the number of registry applications materialized (handy for
    tests; the instances themselves are deliberately dropped — specs
    reconstruct apps on the worker side, this only pays the import and
    model-construction cost once, parent-side).
    """
    import repro.experiments.runner  # noqa: F401  (harness stack)
    import repro.experiments.validation  # noqa: F401
    from repro.apps import ALL_APPLICATIONS
    from repro.apps.base import AppScale

    count = 0
    for cls in ALL_APPLICATIONS:
        cls(AppScale())
        count += 1
    return count


class WorkerPool:
    """A reusable fork-based process pool with crash respawn.

    ``workers`` is the pool size; ``warm`` runs in the parent once,
    immediately before the first fork (default :func:`warm_parent`;
    pass ``None`` to skip).  The pool starts lazily on first use.
    """

    def __init__(
        self,
        workers: int,
        warm: Optional[Callable[[], Any]] = warm_parent,
        max_respawns: int = 3,
    ) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self.max_respawns = max_respawns
        self._warm = warm
        self._pool: Optional[ProcessPoolExecutor] = None
        #: Lifetime counters (observability; see ``sweep.pool.*``).
        self.respawns = 0
        self.batches = 0
        self.forks = 0

    # -- lifecycle ---------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether worker processes are currently alive."""
        return self._pool is not None

    def start(self) -> None:
        """Fork the workers now (no-op when already running)."""
        if self._pool is not None:
            return
        if self._warm is not None:
            self._warm()
        context = multiprocessing.get_context("fork")
        self._pool = ProcessPoolExecutor(
            max_workers=self.workers, mp_context=context
        )
        self.forks += 1

    def close(self) -> None:
        """Shut the workers down (idempotent)."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # defensive: unclosed pools still die
        try:
            self.close()
        except Exception:
            pass

    # -- execution ---------------------------------------------------------

    def map_chunks(
        self, fn: Callable[[Any], Any], payloads: List[Any]
    ) -> Iterator[Tuple[int, Any]]:
        """Run ``fn(payload)`` for every payload; yield ``(index,
        result)`` in completion order.

        A worker crash breaks the whole underlying pool; undelivered
        chunks are resubmitted to a respawned pool (``fn`` must be pure
        in its payload — re-execution yields the identical result).  An
        ordinary exception raised *by* ``fn`` propagates to the caller
        unchanged; the pool stays usable.
        """
        remaining = dict(enumerate(payloads))
        respawns_left = self.max_respawns
        while remaining:
            self.start()
            futures = {
                self._pool.submit(fn, payload): index
                for index, payload in remaining.items()
            }
            broken = False
            try:
                not_done = set(futures)
                while not_done:
                    done, not_done = wait(
                        not_done, return_when=FIRST_COMPLETED
                    )
                    for future in done:
                        index = futures[future]
                        try:
                            result = future.result()
                        except BrokenProcessPool:
                            broken = True
                            continue
                        del remaining[index]
                        yield index, result
                    if broken:
                        break
            finally:
                for future in futures:
                    future.cancel()
            if broken:
                self.respawns += 1
                self._pool.shutdown(wait=False, cancel_futures=True)
                self._pool = None
                if respawns_left <= 0:
                    raise PoolCrashError(
                        f"worker pool crashed {self.respawns} time(s); "
                        f"respawn budget ({self.max_respawns}) exhausted"
                    )
                respawns_left -= 1
        self.batches += 1

    def stats(self) -> dict:
        """Lifetime pool counters for reports and metrics."""
        return {
            "workers": self.workers,
            "active": self.active,
            "forks": self.forks,
            "respawns": self.respawns,
            "batches": self.batches,
        }

    def __repr__(self) -> str:
        state = "active" if self.active else "idle"
        return (
            f"WorkerPool(workers={self.workers}, {state}, "
            f"batches={self.batches}, respawns={self.respawns})"
        )
