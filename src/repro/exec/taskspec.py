"""Pickleable, content-addressed descriptions of experiment runs.

Every experiment in this repository is assembled from independent seeded
runs (a reference run, a fault-free duplicated run, a faulted duplicated
run, optionally with a polling baseline monitor attached).  A
:class:`TaskSpec` captures one such run as plain data:

* **pickleable** — only frozen dataclasses, numbers and strings, so a
  spec can cross a process boundary into a worker pool;
* **reconstructible** — the application is described by its registry
  name (or, for :class:`~repro.apps.synthetic.SyntheticApp`, by its
  explicit PJD models), never by an object graph;
* **digestable** — :meth:`TaskSpec.digest` is a stable SHA-256 over a
  canonical JSON form, which keys the on-disk result cache
  (:mod:`repro.exec.cache`).  Two specs with the same digest describe
  byte-identical runs, because every run is a pure function of its spec
  (see ``tests/experiments/test_parallel_identity.py``).

The solved :class:`~repro.rtc.sizing.SizingResult` rides inside the spec:
the parent process pays the Section 3.4 solve once (warm
``size_duplicated_network`` cache) and workers never re-solve it.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.apps import ALL_APPLICATIONS
from repro.apps.base import AppScale, StreamingApplication
from repro.faults.models import FaultSpec
from repro.recovery.spec import RecoverySpec
from repro.rtc.pjd import PJD
from repro.rtc.sizing import SizingResult

#: Version of the TaskSpec schema itself.  Bump on any change to the
#: fields below or to their run semantics: the version participates in
#: the digest, so old cache entries stop matching automatically.
#: v2: ``exec_mode`` (step-machine vs generator execution core).
#: v3: ``recovery`` (closed-loop countermeasure manager).
TASK_SCHEMA_VERSION = 3

#: Valid ``exec_mode`` values (mirrors ``Simulator(exec_mode=...)``).
EXEC_MODES = ("stepped", "generator")

#: ``kind`` values.
KIND_REFERENCE = "reference"
KIND_DUPLICATED = "duplicated"

_KINDS = (KIND_REFERENCE, KIND_DUPLICATED)


class TaskSpecError(ValueError):
    """An application or option combination that cannot be shipped."""


_REGISTRY: Dict[str, type] = {cls.name: cls for cls in ALL_APPLICATIONS}


@dataclass(frozen=True)
class SyntheticAppSpec:
    """Explicit-model description of a :class:`SyntheticApp` instance.

    Synthetic applications carry their PJD models as constructor
    parameters, so reconstruction needs the models themselves rather
    than a registry name.
    """

    producer: PJD
    replicas: Tuple[PJD, PJD]
    consumer: PJD
    name: str = "synthetic"


@dataclass(frozen=True)
class DistanceMonitorSpec:
    """Declarative attachment of the distance-function baseline monitor.

    Mirrors the Table 3 setup: an ``l = 1`` distance function over the
    replicas' consumption events at the replicator, with bounds derived
    from the (possibly jitter-minimised) replica input models.
    """

    poll_interval: float
    stop_time: float
    event_kind: str = "read"
    l: int = 1
    margin_factor: float = 0.05


@dataclass(frozen=True)
class TaskSpec:
    """One experiment run as plain data.

    ``kind`` selects the harness (:func:`~repro.experiments.runner.
    run_reference` or :func:`~repro.experiments.runner.run_duplicated`);
    the remaining fields are that harness's parameters.  Build specs via
    :meth:`reference` / :meth:`duplicated`, which capture the application
    identity safely.
    """

    kind: str
    app: str
    tokens: int
    seed: int
    app_seed: int = 0
    paper_scale: bool = False
    minimized: bool = False
    synthetic: Optional[SyntheticAppSpec] = None
    #: Pre-solved sizing, shipped so workers never re-run the solver.
    #: Also the vehicle for ablation overrides (threshold / capacities).
    sizing: Optional[SizingResult] = None
    #: Reference runs only: which replica variant parameterises the net.
    variant: int = 0
    #: Duplicated runs only.
    fault: Optional[FaultSpec] = None
    verify_duplicates: bool = False
    strict_single_fault: bool = True
    selector_stall_detection: bool = True
    record_events: bool = False
    monitor: Optional[DistanceMonitorSpec] = None
    #: Run the Section 4 conformance audit in the worker and return the
    #: (serialisable) ValidationReport with the result.
    validate: bool = False
    #: Ship raw consumer payloads back (results always carry per-token
    #: content hashes; raw values can be large for the video apps).
    keep_values: bool = False
    #: Engine execution core: ``"stepped"`` (default, step machines) or
    #: ``"generator"``.  Traces are byte-identical across modes (pinned
    #: by the golden suite), but the mode still participates in the
    #: digest: a cache entry records *how* its bytes were produced.
    exec_mode: str = "stepped"
    #: Duplicated runs only: arm the closed-loop countermeasure manager
    #: (:mod:`repro.recovery`) on the detection log.
    recovery: Optional[RecoverySpec] = None

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise TaskSpecError(f"unknown task kind {self.kind!r}")
        if self.exec_mode not in EXEC_MODES:
            raise TaskSpecError(
                f"unknown exec_mode {self.exec_mode!r} "
                f"(expected one of {EXEC_MODES})"
            )
        if self.monitor is not None and not self.record_events:
            raise TaskSpecError("a monitor needs record_events=True")
        if self.validate and not self.record_events:
            raise TaskSpecError("validation needs record_events=True")
        if self.kind == KIND_REFERENCE and (
            self.fault is not None or self.monitor is not None
        ):
            raise TaskSpecError("reference runs take no fault or monitor")
        if self.kind == KIND_REFERENCE and self.recovery is not None:
            raise TaskSpecError("reference runs take no recovery spec")

    # -- construction ------------------------------------------------------

    @classmethod
    def reference(
        cls,
        app: StreamingApplication,
        tokens: int,
        seed: int,
        sizing: Optional[SizingResult] = None,
        variant: int = 0,
        exec_mode: str = "stepped",
    ) -> "TaskSpec":
        """A reference-network run of ``app`` (Figure 1, top)."""
        return cls(
            kind=KIND_REFERENCE,
            tokens=tokens,
            seed=seed,
            sizing=sizing,
            variant=variant,
            exec_mode=exec_mode,
            **_app_fields(app),
        )

    @classmethod
    def duplicated(
        cls,
        app: StreamingApplication,
        tokens: int,
        seed: int,
        sizing: Optional[SizingResult] = None,
        fault: Optional[FaultSpec] = None,
        verify_duplicates: bool = False,
        strict_single_fault: bool = True,
        selector_stall_detection: bool = True,
        record_events: bool = False,
        monitor: Optional[DistanceMonitorSpec] = None,
        validate: bool = False,
        keep_values: bool = False,
        exec_mode: str = "stepped",
        recovery: Optional[RecoverySpec] = None,
    ) -> "TaskSpec":
        """A duplicated-network run of ``app`` (Figure 1, bottom)."""
        return cls(
            kind=KIND_DUPLICATED,
            tokens=tokens,
            seed=seed,
            sizing=sizing,
            fault=fault,
            verify_duplicates=verify_duplicates,
            strict_single_fault=strict_single_fault,
            selector_stall_detection=selector_stall_detection,
            record_events=record_events or monitor is not None or validate,
            monitor=monitor,
            validate=validate,
            keep_values=keep_values,
            exec_mode=exec_mode,
            recovery=recovery,
            **_app_fields(app),
        )

    # -- identity ----------------------------------------------------------

    def digest(self) -> str:
        """Stable content digest of this spec (hex SHA-256).

        Canonicalises the spec (dataclasses to tagged dicts, dict keys
        sorted, floats via their shortest-roundtrip repr) and includes
        :data:`TASK_SCHEMA_VERSION`, so semantic changes to the spec
        format invalidate old digests wholesale.
        """
        payload = {"schema": TASK_SCHEMA_VERSION, "spec": _canon(self)}
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()

    def __hash__(self) -> int:
        return hash(self.digest())

    def label(self) -> str:
        """Short human-readable identity for progress reporting."""
        parts = [self.app, self.kind, f"seed={self.seed}"]
        if self.fault is not None:
            parts.append(f"fault={self.fault.kind}@r{self.fault.replica}")
        if self.monitor is not None:
            parts.append("monitor")
        return " ".join(parts)

    def sizing_group(self) -> str:
        """Digest of the sizing *problem* this spec poses (hex SHA-256
        prefix).

        Two specs with equal sizing groups feed identical interface
        models to the Section 3.4 solver, so a warm
        :class:`~repro.rtc.sizing.SolverContext` that solved one gets a
        pure memo hit on the other.  The scheduler sorts pending tasks
        by this key so chunk-mates share warm solver state; it is a
        *scheduling* key only and never keys the result cache (that is
        :meth:`digest`).
        """
        payload = {
            "app": self.app,
            "app_seed": self.app_seed,
            "paper_scale": self.paper_scale,
            "minimized": self.minimized,
            "synthetic": _canon(self.synthetic),
            "presolved": self.sizing is not None,
        }
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()[:16]


def _canon(obj):
    """Reduce ``obj`` to a canonical JSON-compatible structure."""
    if obj is None or isinstance(obj, (bool, int, str)):
        return obj
    if isinstance(obj, float):
        # repr is the shortest round-tripping form — stable across
        # processes and platforms for IEEE doubles.
        return f"f:{obj!r}"
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        body = {
            f.name: _canon(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        body["__type__"] = type(obj).__name__
        return body
    if isinstance(obj, (list, tuple)):
        return [_canon(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): _canon(value) for key, value in obj.items()}
    raise TaskSpecError(
        f"cannot canonicalise {type(obj).__name__!r} for digesting"
    )


def _models_equal(a: StreamingApplication, b: StreamingApplication) -> bool:
    return (
        a.producer_model == b.producer_model
        and a.consumer_model == b.consumer_model
        and list(a.replica_input_models) == list(b.replica_input_models)
        and list(a.replica_output_models) == list(b.replica_output_models)
    )


def _app_fields(app: StreamingApplication) -> Dict[str, object]:
    """Capture an application instance as reconstructible spec fields.

    Registry applications (mjpeg / adpcm / h264) are described by name +
    scale + seed (+ the jitter-minimised flag); synthetic applications by
    their explicit models.  Raises :class:`TaskSpecError` for instances
    whose models were mutated away from what reconstruction would build —
    such an app cannot be shipped to a worker faithfully.
    """
    from repro.apps.synthetic import SyntheticApp

    if isinstance(app, SyntheticApp):
        inputs = tuple(app.replica_input_models)
        outputs = tuple(app.replica_output_models)
        if inputs != outputs:
            raise TaskSpecError(
                f"{app.name}: synthetic apps with distinct input/output "
                "replica models are not reconstructible"
            )
        return {
            "app": app.name,
            "app_seed": app.seed,
            "paper_scale": app.scale.paper_scale,
            "minimized": False,
            "synthetic": SyntheticAppSpec(
                producer=app.producer_model,
                replicas=inputs,
                consumer=app.consumer_model,
                name=app.name,
            ),
        }
    cls = _REGISTRY.get(app.name)
    minimized = bool(getattr(app, "is_minimized", False))
    if cls is not None and type(app) is cls:
        candidate = cls(
            AppScale(paper_scale=app.scale.paper_scale), seed=app.seed
        )
        if minimized:
            candidate = candidate.minimized()
        if _models_equal(candidate, app):
            return {
                "app": app.name,
                "app_seed": app.seed,
                "paper_scale": app.scale.paper_scale,
                "minimized": minimized,
                "synthetic": None,
            }
    raise TaskSpecError(
        f"{app.name}: instance cannot be reconstructed from its class "
        "(unknown application or locally mutated models)"
    )


# -- JSON round-trip -------------------------------------------------------
#
# The campaign layer persists minimal reproducers as *replayable TaskSpec
# JSON* (human-diffable, unlike the pickle cache).  Encoding tags every
# nested dataclass with its type name; decoding rebuilds the object graph
# through the constructors, so validation in ``__post_init__`` re-runs on
# load and malformed documents fail loudly.

_JSON_TYPES: Dict[str, type] = {}

#: Dataclass fields that must be decoded back into tuples (JSON only has
#: arrays); everything else keeps the list/scalar shape it decoded to.
_TUPLE_FIELDS = {
    "SyntheticAppSpec": ("replicas",),
    "SizingResult": (
        "replicator_capacities",
        "selector_capacities",
        "selector_initial_fill",
    ),
}


def _register_json_types() -> None:
    if _JSON_TYPES:
        return
    from repro.faults.models import FaultSpec as _FaultSpec

    for cls in (TaskSpec, SyntheticAppSpec, DistanceMonitorSpec, PJD,
                SizingResult, _FaultSpec, RecoverySpec):
        _JSON_TYPES[cls.__name__] = cls


def spec_to_jsonable(obj):
    """Encode a :class:`TaskSpec` (or nested spec dataclass) for JSON."""
    _register_json_types()
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        name = type(obj).__name__
        if name not in _JSON_TYPES:
            raise TaskSpecError(
                f"cannot encode {name!r} as replayable JSON"
            )
        body = {
            f.name: spec_to_jsonable(getattr(obj, f.name))
            for f in dataclasses.fields(obj)
        }
        body["__type__"] = name
        return body
    if isinstance(obj, (list, tuple)):
        return [spec_to_jsonable(item) for item in obj]
    if isinstance(obj, dict):
        return {str(key): spec_to_jsonable(val) for key, val in obj.items()}
    raise TaskSpecError(
        f"cannot encode {type(obj).__name__!r} as replayable JSON"
    )


def spec_from_jsonable(data):
    """Decode the output of :func:`spec_to_jsonable`.

    Raises :class:`TaskSpecError` on unknown tags or constructor-rejected
    values (the dataclass validators re-run on decode).
    """
    _register_json_types()
    if isinstance(data, dict) and "__type__" in data:
        name = data["__type__"]
        cls = _JSON_TYPES.get(name)
        if cls is None:
            raise TaskSpecError(f"unknown spec type {name!r} in JSON")
        kwargs = {
            key: spec_from_jsonable(value)
            for key, value in data.items()
            if key != "__type__"
        }
        for field_name in _TUPLE_FIELDS.get(name, ()):
            if isinstance(kwargs.get(field_name), list):
                kwargs[field_name] = tuple(kwargs[field_name])
        try:
            return cls(**kwargs)
        except (TypeError, ValueError) as error:
            raise TaskSpecError(
                f"invalid {name} in replayable JSON: {error}"
            ) from error
    if isinstance(data, dict):
        return {key: spec_from_jsonable(val) for key, val in data.items()}
    if isinstance(data, list):
        return [spec_from_jsonable(item) for item in data]
    return data


def build_app(spec: TaskSpec) -> StreamingApplication:
    """Reconstruct the application an executed spec describes."""
    from repro.apps.synthetic import SyntheticApp

    scale = AppScale(paper_scale=spec.paper_scale)
    if spec.synthetic is not None:
        app: StreamingApplication = SyntheticApp(
            producer=spec.synthetic.producer,
            replicas=list(spec.synthetic.replicas),
            consumer=spec.synthetic.consumer,
            scale=scale,
            seed=spec.app_seed,
            name=spec.synthetic.name,
        )
    else:
        cls = _REGISTRY.get(spec.app)
        if cls is None:
            raise TaskSpecError(f"unknown application {spec.app!r}")
        app = cls(scale, seed=spec.app_seed)
    if spec.minimized:
        app = app.minimized()
    return app


def presolve_sizings(specs, context=None):
    """Attach a parent-side solved sizing to every spec that lacks one.

    Returns a new spec list; specs already carrying a sizing (e.g.
    ablation overrides) pass through untouched.  All solves share one
    :class:`~repro.rtc.sizing.SolverContext` — repeated interface-model
    tuples across a sweep hit its memo, and near-identical tuples
    warm-start the curve solvers — so the batch costs far less than
    per-spec cold solves while producing bit-identical results.  Workers
    then never run the solver at all.

    Pass an explicit ``context`` to accumulate warm state (and hit/miss
    statistics, see :meth:`SolverContext.stats`) across several batches.
    """
    from repro.rtc.sizing import SolverContext

    if context is None:
        context = SolverContext()
    solved = []
    for spec in specs:
        if spec.sizing is not None:
            solved.append(spec)
            continue
        sizing = build_app(spec).sizing(context=context)
        solved.append(dataclasses.replace(spec, sizing=sizing))
    return solved
