"""Parallel experiment execution: task specs, workers, cache, executor.

The subsystem turns every experiment run into a pickleable, content-
addressed :class:`TaskSpec`, executes batches of them through an
optional process pool (:class:`SweepExecutor` / :func:`run_sweep`), and
memoises executed results on disk (:class:`ResultCache`).  See
``docs/API.md`` ("Parallel execution & caching") for the full contract.
"""

from repro.exec.cache import (
    CACHE_DIR_ENV,
    CACHE_SCHEMA_VERSION,
    DEFAULT_CACHE_DIR,
    ResultCache,
)
from repro.exec.executor import (
    TARGET_CHUNK_S,
    SweepExecutor,
    SweepStats,
    run_sweep,
)
from repro.exec.pool import (
    PoolCrashError,
    WorkerPool,
    fork_available,
    warm_parent,
)
from repro.exec.results import (
    DetectionRecord,
    MonitorRecord,
    TaskResult,
    hash_values,
    snapshot_for_result,
)
from repro.exec.taskspec import (
    KIND_DUPLICATED,
    KIND_REFERENCE,
    TASK_SCHEMA_VERSION,
    DistanceMonitorSpec,
    SyntheticAppSpec,
    TaskSpec,
    TaskSpecError,
    build_app,
    presolve_sizings,
    spec_from_jsonable,
    spec_to_jsonable,
)
from repro.exec.worker import (
    execute_task,
    presolve_chunk,
    run_chunk,
    worker_solver_context,
)

__all__ = [
    "CACHE_DIR_ENV",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "DistanceMonitorSpec",
    "DetectionRecord",
    "KIND_DUPLICATED",
    "KIND_REFERENCE",
    "MonitorRecord",
    "PoolCrashError",
    "ResultCache",
    "SweepExecutor",
    "SweepStats",
    "SyntheticAppSpec",
    "TARGET_CHUNK_S",
    "TASK_SCHEMA_VERSION",
    "TaskResult",
    "TaskSpec",
    "TaskSpecError",
    "WorkerPool",
    "build_app",
    "execute_task",
    "fork_available",
    "presolve_chunk",
    "presolve_sizings",
    "hash_values",
    "run_chunk",
    "run_sweep",
    "snapshot_for_result",
    "spec_from_jsonable",
    "spec_to_jsonable",
    "warm_parent",
    "worker_solver_context",
]
