"""Worker-side execution of a :class:`~repro.exec.taskspec.TaskSpec`.

:func:`execute_task` is the pure function every sweep is built from: it
reconstructs the application, runs the described network to quiescence
and reduces the outcome to a pickleable
:class:`~repro.exec.results.TaskResult`.  It runs identically inline
(serial fallback) and inside a pool worker — parallel sweeps are
byte-identical to serial ones because this is the only execution path.

Experiment-layer imports are deferred into the function bodies:
``repro.experiments`` imports the executor, so importing the experiment
harnesses here at module scope would be circular.
"""

from __future__ import annotations

import os
import platform
import time
from typing import List, Sequence, Tuple

from repro.exec.results import (
    DetectionRecord,
    MonitorRecord,
    TaskResult,
    hash_values,
    snapshot_for_result,
)
from repro.exec.taskspec import (
    KIND_REFERENCE,
    DistanceMonitorSpec,
    TaskSpec,
    build_app,
)

#: Name under which the declarative baseline monitor registers itself
#: (matches the Table 3 harness).
MONITOR_NAME = "distance-monitor"

#: Per-process warm solver state (see :func:`worker_solver_context`).
_SOLVER_CONTEXT = None


def worker_solver_context():
    """This process's long-lived :class:`~repro.rtc.sizing.SolverContext`.

    Created on first use and kept for the life of the process, so a
    pool worker that survives across chunks — and, with the persistent
    :class:`~repro.exec.pool.WorkerPool`, across whole sweep batches —
    accumulates solver memos and warm-start hints instead of solving
    cold each time.  Warm solves are bit-identical to cold ones (pinned
    by the parallel-identity suite), so this is invisible to results.
    """
    global _SOLVER_CONTEXT
    if _SOLVER_CONTEXT is None:
        from repro.rtc.sizing import SolverContext

        _SOLVER_CONTEXT = SolverContext()
    return _SOLVER_CONTEXT


def execute_task(spec: TaskSpec) -> TaskResult:
    """Execute one task spec and return its serialisable result."""
    from repro.kpn.errors import SimulationError
    from repro.kpn.tokens import COPY_STATS

    start = time.perf_counter()
    copies_before = COPY_STATS.snapshot()
    app = build_app(spec)
    if spec.sizing is not None:
        sizing = spec.sizing
    else:
        sizing = app.sizing(context=worker_solver_context())
    try:
        if spec.kind == KIND_REFERENCE:
            result = _execute_reference(spec, app, sizing)
        else:
            result = _execute_duplicated(spec, app, sizing)
    except SimulationError as error:
        result = TaskResult(
            kind=spec.kind,
            ok=False,
            error=f"{type(error).__name__}: {error}",
        )
    result.copy_stats = COPY_STATS.delta(copies_before)
    result.wall_time_s = time.perf_counter() - start
    result.worker = {"pid": os.getpid(), "host": platform.node()}
    result.metrics = snapshot_for_result(result)
    return result


def run_chunk(
    indexed_specs: Sequence[Tuple[int, TaskSpec]]
) -> List[Tuple[int, TaskResult]]:
    """Execute a chunk of ``(index, spec)`` pairs (pool entry point)."""
    return [(index, execute_task(spec)) for index, spec in indexed_specs]


def presolve_chunk(indexed_specs: Sequence[Tuple[int, TaskSpec]]):
    """Solve sizings for a chunk of ``(index, spec)`` pairs (pool entry
    point for parallel presolve).

    Uses this worker's persistent :func:`worker_solver_context`, so the
    warm-start hints one solve leaves behind are shared by the next —
    within this chunk and with every later chunk the worker handles.
    Only the solved :class:`~repro.rtc.sizing.SizingResult` travels
    back (sizings are small; shipping re-specs would be redundant).
    """
    context = worker_solver_context()
    return [
        (index, build_app(spec).sizing(context=context))
        for index, spec in indexed_specs
    ]


def _execute_reference(spec, app, sizing) -> TaskResult:
    from repro.experiments.runner import run_reference

    run = run_reference(
        app,
        spec.tokens,
        spec.seed,
        sizing=sizing,
        variant=spec.variant,
        exec_mode=spec.exec_mode,
    )
    return TaskResult(
        kind=spec.kind,
        value_hashes=hash_values(run.values),
        values=list(run.values) if spec.keep_values else None,
        times=list(run.times),
        inter_arrival=list(run.inter_arrival),
        stalls=run.stalls,
        max_fills=dict(run.max_fills),
        events=run.events,
    )


def _execute_duplicated(spec, app, sizing) -> TaskResult:
    from repro.experiments.runner import run_duplicated

    monitor_factory = None
    if spec.monitor is not None:
        monitor_factory = _monitor_factory(app, spec.monitor)
    run = run_duplicated(
        app,
        spec.tokens,
        spec.seed,
        fault=spec.fault,
        sizing=sizing,
        record_events=spec.record_events,
        verify_duplicates=spec.verify_duplicates,
        strict_single_fault=spec.strict_single_fault,
        selector_stall_detection=spec.selector_stall_detection,
        monitor_factory=monitor_factory,
        exec_mode=spec.exec_mode,
        recovery=spec.recovery,
    )
    result = TaskResult(
        kind=spec.kind,
        value_hashes=hash_values(run.values),
        values=list(run.values) if spec.keep_values else None,
        times=list(run.times),
        inter_arrival=list(run.inter_arrival),
        stalls=run.stalls,
        max_fills=dict(run.max_fills),
        events=run.events,
        detections=[
            DetectionRecord(
                time=report.time,
                site=report.site,
                replica=report.replica,
                mechanism=report.mechanism,
                detail=report.detail,
            )
            for report in run.detections
        ],
        selector_drops=list(run.selector_drops),
        overhead_replicator=run.overhead_replicator,
        overhead_selector=run.overhead_selector,
    )
    if run.injector is not None:
        result.injected_at = run.injector.injected_at
        result.latency_selector = run.detection_latency("selector")
        result.latency_replicator = run.detection_latency("replicator")
    result.recovery = run.recovery
    if spec.monitor is not None:
        monitor = run.network.network.process(MONITOR_NAME)
        result.monitor_detections = [
            MonitorRecord(time=d.time, stream=d.stream, reason=d.reason)
            for d in monitor.detections
        ]
    if spec.validate:
        from repro.experiments.validation import validate_run

        recorder = run.network.network.recorder
        result.validation = validate_run(
            app,
            recorder,
            sizing,
            detections=run.detections,
            fault_free=spec.fault is None,
        )
    return result


def _monitor_factory(app, monitor: DistanceMonitorSpec):
    """Rebuild the Table 3 distance-function monitor declaratively."""
    from repro.baselines.distance import (
        DistanceFunctionMonitor,
        l_repetitive_bounds,
    )

    bounds = [
        l_repetitive_bounds(
            model,
            l=monitor.l,
            margin=monitor.margin_factor * model.period,
        )
        for model in app.replica_input_models
    ]

    def factory(duplicated, recorder):
        return [
            DistanceFunctionMonitor(
                MONITOR_NAME,
                poll_interval=monitor.poll_interval,
                stop_time=monitor.stop_time,
                streams=[
                    recorder.channel("replicator.R1"),
                    recorder.channel("replicator.R2"),
                ],
                bounds=bounds,
                event_kind=monitor.event_kind,
            )
        ]

    return factory
