"""Serialisable run results for the sweep executor.

A worker cannot ship a :class:`~repro.experiments.runner.DuplicatedRun`
back to the parent — it holds the whole live network (processes,
channels, hooks).  :class:`TaskResult` is the flat, pickleable reduction
that every experiment aggregation actually consumes: consumer timings,
fill maxima, detection records, per-site detection latencies, baseline
monitor detections and overhead reports.

Consumer payloads are carried as per-token **content hashes**
(:func:`hash_values`): Theorem 2 equivalence checks only ever compare
token sequences for equality, and hashing keeps multi-megabyte video
frames out of the IPC stream and the on-disk cache.  ``keep_values=True``
on the spec additionally ships the raw payloads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class DetectionRecord:
    """Flat copy of a :class:`~repro.core.detection.FaultReport`."""

    time: float
    site: str
    replica: int
    mechanism: str
    detail: str = ""


@dataclass(frozen=True)
class MonitorRecord:
    """Flat copy of a baseline :class:`MonitorDetection`."""

    time: float
    stream: int
    reason: str


@dataclass
class TaskResult:
    """Everything one executed :class:`TaskSpec` produced.

    ``ok`` is False when the run raised a
    :class:`~repro.kpn.errors.SimulationError` (a deterministic outcome
    for deliberately under-sized ablation configurations); ``error``
    then carries ``"ExceptionType: message"`` and the data fields are
    empty.  Any other exception propagates and fails the sweep.
    """

    kind: str
    ok: bool = True
    error: Optional[str] = None
    value_hashes: List[str] = field(default_factory=list)
    values: Optional[List[Any]] = None
    times: List[float] = field(default_factory=list)
    inter_arrival: List[float] = field(default_factory=list)
    stalls: int = 0
    max_fills: Dict[str, int] = field(default_factory=dict)
    events: int = 0
    detections: List[DetectionRecord] = field(default_factory=list)
    injected_at: Optional[float] = None
    latency_selector: Optional[float] = None
    latency_replicator: Optional[float] = None
    selector_drops: List[int] = field(default_factory=list)
    overhead_replicator: Optional[Any] = None
    overhead_selector: Optional[Any] = None
    monitor_detections: List[MonitorRecord] = field(default_factory=list)
    #: The worker-side :class:`~repro.experiments.validation.
    #: ValidationReport` when the spec asked for one.
    validation: Optional[Any] = None
    #: Zero-copy accounting delta this run contributed to the executing
    #: process's :data:`~repro.kpn.tokens.COPY_STATS` (keys ``copies`` /
    #: ``copied_bytes`` / ``views``).  Rides back across the pool
    #: boundary so the parent can merge worker-side counters.
    copy_stats: Optional[Dict[str, int]] = None
    #: Worker wall-clock for the run (set by the executor path; cache
    #: hits report the original execution's time).
    wall_time_s: float = 0.0
    #: Serialised :class:`~repro.obs.sketch.MetricsSnapshot` of this
    #: run (counters, gauge stats, latency sketches) — the mergeable
    #: summary streamed into the run ledger and folded parent-side into
    #: fleet-wide aggregates, so raw series never cross the pool
    #: boundary.  Same delta pattern as ``copy_stats``.
    metrics: Optional[Dict[str, Any]] = None
    #: Fingerprint of the process that executed the run (``pid`` /
    #: ``host``); cache hits report the original executor.
    worker: Optional[Dict[str, Any]] = None
    #: Closed-loop recovery summary (``RecoveryManager.as_dict()``) when
    #: the spec armed a countermeasure manager; ``None`` otherwise.
    recovery: Optional[Dict[str, Any]] = None

    @property
    def token_count(self) -> int:
        """Number of tokens the consumer received."""
        return len(self.value_hashes)

    def detection_latency(self, site: Optional[str] = None
                          ) -> Optional[float]:
        """Injection-to-detection latency at an optional site (ms)."""
        if site == "selector":
            return self.latency_selector
        if site == "replicator":
            return self.latency_replicator
        if self.injected_at is None:
            return None
        for record in self.detections:
            if record.time >= self.injected_at:
                return record.time - self.injected_at
        return None

    def mechanism_latency(self, replica: int, mechanism: str
                          ) -> Optional[float]:
        """Post-injection latency of one detection mechanism at one
        replica, or ``None`` (mirrors the ablation harness filter)."""
        if self.injected_at is None:
            return None
        for record in self.detections:
            if record.mechanism != mechanism:
                continue
            if record.replica != replica:
                continue
            if record.time < self.injected_at:
                continue
            return record.time - self.injected_at
        return None

    def first_monitor_detection(self, stream: Optional[int] = None
                                ) -> Optional[MonitorRecord]:
        """First baseline-monitor detection, optionally per stream."""
        for record in self.monitor_detections:
            if stream is None or record.stream == stream:
                return record
        return None


def snapshot_for_result(result: TaskResult) -> Dict[str, Any]:
    """The serialised mergeable metrics snapshot of one task result.

    Built *after* the run finished (it reads the reduced result only),
    so streaming can never perturb execution.  The snapshot carries:

    * counters — events, tokens, stalls, detection report counts, the
      Eq. 3/5 **false-positive count** (reports with no preceding
      injection) and the zero-copy payload accounting;
    * the ``detect.latency_ms`` **sketch** (first post-injection
      detection latency — the Eqs. 6–8 headline metric) plus the
      ``task.wall_ms`` sketch;
    * per-task throughput gauges, from which per-worker events/sec is
      derived ledger-side.
    """
    from repro.obs.sketch import MetricsSnapshot

    snap = MetricsSnapshot()
    snap.count("tasks.total")
    snap.count("tasks.ok" if result.ok else "tasks.error")
    if result.wall_time_s:
        snap.observe("task.wall_ms", result.wall_time_s * 1e3)
    if not result.ok:
        return snap.as_dict()
    snap.count("sim.events", result.events)
    snap.count("consumer.tokens", result.token_count)
    snap.count("consumer.stalls", result.stalls)
    snap.count("detect.reports", len(result.detections))
    false_positives = sum(
        1 for record in result.detections
        if result.injected_at is None or record.time < result.injected_at
    )
    snap.count("detect.false_positives", false_positives)
    if result.copy_stats:
        for key, value in result.copy_stats.items():
            snap.count(f"copy.{key}", value)
    latency = result.detection_latency()
    if latency is not None:
        snap.observe("detect.latency_ms", latency)
    for site in ("selector", "replicator"):
        site_latency = result.detection_latency(site)
        if site_latency is not None:
            snap.observe(f"detect.latency_ms.{site}", site_latency)
    if result.wall_time_s:
        snap.gauge_sample(
            "task.events_per_sec", result.events / result.wall_time_s
        )
    if result.recovery:
        attempts = result.recovery.get("attempts", [])
        snap.count("recovery.attempts", len(attempts))
        snap.count("recovery.completed",
                   int(result.recovery.get("completed", 0)))
        for attempt in attempts:
            completed_at = attempt.get("completed_at")
            detected_at = attempt.get("detected_at")
            if completed_at is not None and detected_at is not None:
                snap.observe("recovery.mttr_ms", completed_at - detected_at)
    return snap.as_dict()


def hash_values(values: Sequence[Any]) -> List[str]:
    """Per-token content hashes of a consumer payload sequence.

    Equal hashes mean equal payloads under the same recursive equality
    :func:`~repro.core.equivalence.output_values_equal` uses (arrays by
    dtype/shape/bytes, sequences element-wise, scalars by repr), so
    prefix comparisons over hash lists decide Theorem 2 equivalence.
    """
    return [_hash_one(value) for value in values]


def _hash_one(value: Any) -> str:
    digest = hashlib.sha256()
    _feed(digest, value)
    return digest.hexdigest()


def _feed(digest, value: Any) -> None:
    if isinstance(value, np.ndarray):
        digest.update(b"nd:")
        digest.update(str(value.dtype).encode())
        digest.update(repr(value.shape).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (tuple, list)):
        digest.update(f"seq:{len(value)}:".encode())
        for item in value:
            _feed(digest, item)
    elif isinstance(value, (bytes, bytearray)):
        digest.update(b"bytes:")
        digest.update(bytes(value))
    else:
        digest.update(b"repr:")
        digest.update(repr(value).encode())
