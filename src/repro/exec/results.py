"""Serialisable run results for the sweep executor.

A worker cannot ship a :class:`~repro.experiments.runner.DuplicatedRun`
back to the parent — it holds the whole live network (processes,
channels, hooks).  :class:`TaskResult` is the flat, pickleable reduction
that every experiment aggregation actually consumes: consumer timings,
fill maxima, detection records, per-site detection latencies, baseline
monitor detections and overhead reports.

Consumer payloads are carried as per-token **content hashes**
(:func:`hash_values`): Theorem 2 equivalence checks only ever compare
token sequences for equality, and hashing keeps multi-megabyte video
frames out of the IPC stream and the on-disk cache.  ``keep_values=True``
on the spec additionally ships the raw payloads.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

import numpy as np


@dataclass(frozen=True)
class DetectionRecord:
    """Flat copy of a :class:`~repro.core.detection.FaultReport`."""

    time: float
    site: str
    replica: int
    mechanism: str
    detail: str = ""


@dataclass(frozen=True)
class MonitorRecord:
    """Flat copy of a baseline :class:`MonitorDetection`."""

    time: float
    stream: int
    reason: str


@dataclass
class TaskResult:
    """Everything one executed :class:`TaskSpec` produced.

    ``ok`` is False when the run raised a
    :class:`~repro.kpn.errors.SimulationError` (a deterministic outcome
    for deliberately under-sized ablation configurations); ``error``
    then carries ``"ExceptionType: message"`` and the data fields are
    empty.  Any other exception propagates and fails the sweep.
    """

    kind: str
    ok: bool = True
    error: Optional[str] = None
    value_hashes: List[str] = field(default_factory=list)
    values: Optional[List[Any]] = None
    times: List[float] = field(default_factory=list)
    inter_arrival: List[float] = field(default_factory=list)
    stalls: int = 0
    max_fills: Dict[str, int] = field(default_factory=dict)
    events: int = 0
    detections: List[DetectionRecord] = field(default_factory=list)
    injected_at: Optional[float] = None
    latency_selector: Optional[float] = None
    latency_replicator: Optional[float] = None
    selector_drops: List[int] = field(default_factory=list)
    overhead_replicator: Optional[Any] = None
    overhead_selector: Optional[Any] = None
    monitor_detections: List[MonitorRecord] = field(default_factory=list)
    #: The worker-side :class:`~repro.experiments.validation.
    #: ValidationReport` when the spec asked for one.
    validation: Optional[Any] = None
    #: Zero-copy accounting delta this run contributed to the executing
    #: process's :data:`~repro.kpn.tokens.COPY_STATS` (keys ``copies`` /
    #: ``copied_bytes`` / ``views``).  Rides back across the pool
    #: boundary so the parent can merge worker-side counters.
    copy_stats: Optional[Dict[str, int]] = None
    #: Worker wall-clock for the run (set by the executor path; cache
    #: hits report the original execution's time).
    wall_time_s: float = 0.0

    @property
    def token_count(self) -> int:
        """Number of tokens the consumer received."""
        return len(self.value_hashes)

    def detection_latency(self, site: Optional[str] = None
                          ) -> Optional[float]:
        """Injection-to-detection latency at an optional site (ms)."""
        if site == "selector":
            return self.latency_selector
        if site == "replicator":
            return self.latency_replicator
        if self.injected_at is None:
            return None
        for record in self.detections:
            if record.time >= self.injected_at:
                return record.time - self.injected_at
        return None

    def mechanism_latency(self, replica: int, mechanism: str
                          ) -> Optional[float]:
        """Post-injection latency of one detection mechanism at one
        replica, or ``None`` (mirrors the ablation harness filter)."""
        if self.injected_at is None:
            return None
        for record in self.detections:
            if record.mechanism != mechanism:
                continue
            if record.replica != replica:
                continue
            if record.time < self.injected_at:
                continue
            return record.time - self.injected_at
        return None

    def first_monitor_detection(self, stream: Optional[int] = None
                                ) -> Optional[MonitorRecord]:
        """First baseline-monitor detection, optionally per stream."""
        for record in self.monitor_detections:
            if stream is None or record.stream == stream:
                return record
        return None


def hash_values(values: Sequence[Any]) -> List[str]:
    """Per-token content hashes of a consumer payload sequence.

    Equal hashes mean equal payloads under the same recursive equality
    :func:`~repro.core.equivalence.output_values_equal` uses (arrays by
    dtype/shape/bytes, sequences element-wise, scalars by repr), so
    prefix comparisons over hash lists decide Theorem 2 equivalence.
    """
    return [_hash_one(value) for value in values]


def _hash_one(value: Any) -> str:
    digest = hashlib.sha256()
    _feed(digest, value)
    return digest.hexdigest()


def _feed(digest, value: Any) -> None:
    if isinstance(value, np.ndarray):
        digest.update(b"nd:")
        digest.update(str(value.dtype).encode())
        digest.update(repr(value.shape).encode())
        digest.update(np.ascontiguousarray(value).tobytes())
    elif isinstance(value, (tuple, list)):
        digest.update(f"seq:{len(value)}:".encode())
        for item in value:
            _feed(digest, item)
    elif isinstance(value, (bytes, bytearray)):
        digest.update(b"bytes:")
        digest.update(bytes(value))
    else:
        digest.update(b"repr:")
        digest.update(repr(value).encode())
