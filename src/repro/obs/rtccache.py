"""RTC memo-effectiveness gauges.

The Section 3.4 solvers lean on three layers of memoisation:

* the ``lru_cache``\\ d curve operators in :mod:`repro.rtc.minplus`
  (min-plus/max-plus convolution and deconvolution);
* the ``lru_cache``\\ d PJD curve constructors in :mod:`repro.rtc.pjd`;
* the full-sizing cache and (optionally) a warm-start
  :class:`~repro.rtc.sizing.SolverContext` in :mod:`repro.rtc.sizing`.

:func:`record_rtc_cache_gauges` snapshots every layer's ``cache_info()``
hit/miss/size numbers into ``rtc.cache.*`` gauges on a
:class:`~repro.obs.metrics.MetricsRegistry`, so run reports answer "did
the sweep actually reuse solver work, or did it solve cold?".  Pass a
``SolverContext`` to additionally publish its warm-start counters under
``rtc.ctx.*``.
"""

from __future__ import annotations

from typing import Dict, Optional

#: Gauge name prefix for process-wide ``lru_cache`` statistics.
CACHE_PREFIX = "rtc.cache"

#: Gauge name prefix for per-sweep :class:`SolverContext` statistics.
CONTEXT_PREFIX = "rtc.ctx"


def _rtc_caches() -> Dict[str, object]:
    """The memoised callables, keyed by their gauge-name segment.

    Imported lazily so ``repro.obs`` stays importable without pulling the
    whole RTC stack in at module load.
    """
    from repro.rtc import minplus, pjd, sizing

    return {
        "minplus_conv": minplus._min_plus_convolution_cached,
        "minplus_deconv": minplus._min_plus_deconvolution_cached,
        "maxplus_conv": minplus._max_plus_convolution_cached,
        "pjd_upper": pjd._upper_curve,
        "pjd_lower": pjd._lower_curve,
        "sizing": sizing._size_duplicated_network_cached,
    }


def rtc_cache_stats() -> Dict[str, Dict[str, int]]:
    """Plain-data ``cache_info()`` snapshot of every RTC memo layer."""
    stats: Dict[str, Dict[str, int]] = {}
    for name, func in _rtc_caches().items():
        info = func.cache_info()
        stats[name] = {
            "hits": info.hits,
            "misses": info.misses,
            "currsize": info.currsize,
        }
    return stats


def record_rtc_cache_gauges(registry, context=None) -> None:
    """Publish RTC memo hit/miss/size gauges onto ``registry``.

    Per cache ``<name>`` this sets ``rtc.cache.<name>.hits``,
    ``.misses`` and ``.size``, plus process-wide ``rtc.cache.total.*``
    rollups.  The numbers are process-lifetime (``lru_cache`` has no
    per-run scoping), which is exactly the sweep-level question the
    gauges exist to answer.

    When ``context`` (a :class:`~repro.rtc.sizing.SolverContext`) is
    given, its per-sweep warm-start counters are published under
    ``rtc.ctx.*`` as well.

    A disabled registry makes every call a no-op (null instruments).
    """
    total_hits = 0
    total_misses = 0
    for name, stats in rtc_cache_stats().items():
        registry.gauge(f"{CACHE_PREFIX}.{name}.hits").set(stats["hits"])
        registry.gauge(f"{CACHE_PREFIX}.{name}.misses").set(stats["misses"])
        registry.gauge(f"{CACHE_PREFIX}.{name}.size").set(stats["currsize"])
        total_hits += stats["hits"]
        total_misses += stats["misses"]
    registry.gauge(f"{CACHE_PREFIX}.total.hits").set(total_hits)
    registry.gauge(f"{CACHE_PREFIX}.total.misses").set(total_misses)
    if context is not None:
        for key, value in context.stats().items():
            registry.gauge(f"{CONTEXT_PREFIX}.{key}").set(value)


def summarize_cache_gauges(metrics: Dict[str, dict]) -> Optional[str]:
    """One-line summary of the ``rtc.cache.total.*`` gauges, if present.

    ``metrics`` is a ``MetricsRegistry.snapshot()`` dictionary (the
    ``"metrics"`` section of a run report).  Returns ``None`` when the
    gauges were never recorded.
    """
    hits_entry = metrics.get(f"{CACHE_PREFIX}.total.hits")
    misses_entry = metrics.get(f"{CACHE_PREFIX}.total.misses")
    if hits_entry is None or misses_entry is None:
        return None
    hits = hits_entry.get("value", 0)
    misses = misses_entry.get("value", 0)
    lookups = hits + misses
    rate = (100.0 * hits / lookups) if lookups else 0.0
    return (
        f"RTC solver memos: {hits:.0f} hits / {misses:.0f} misses "
        f"({rate:.0f}% hit rate)"
    )
