"""The metrics registry: counters, gauges, histograms, time series.

The paper's detection story is *observability by construction*: faults
surface as FIFO occupancy (``space_k == 0``, Eq. 3) and divergence
``|space_1 - space_2|`` crossing the threshold ``D`` (Eq. 5).  This module
provides the in-band instruments the engine and the framework channels use
to expose those quantities while a run executes — without perturbing it.

Design constraints (both load-bearing):

* **Determinism** — instruments only *record*; they never touch simulator
  state, so an instrumented run fires the exact same event sequence as an
  uninstrumented one (checked byte-for-byte against the golden traces).
* **Disabled means free** — the hot path must pay ~nothing when metrics
  are off.  Instrumented code therefore holds either a live instrument or
  ``None`` and guards each sample with one ``is not None`` check (the same
  idiom as the existing ``ChannelTrace`` hooks).  A disabled registry
  hands out shared no-op instruments so *optional* instrumentation can
  also be written unconditionally against the registry API.

Typical use::

    registry = MetricsRegistry()
    sim = Simulator(metrics=registry)
    ... run ...
    registry.snapshot()      # plain-data dump for reports / JSON
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Sequence, Tuple


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    kind = "counter"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        self.value += amount

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind, "value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name}={self.value})"


class Gauge:
    """A point-in-time value with running min/max."""

    __slots__ = ("name", "value", "min", "max", "updates")

    kind = "gauge"

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.updates = 0

    def set(self, value: float) -> None:
        self.value = value
        self.updates += 1
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "value": self.value,
            "min": self.min,
            "max": self.max,
            "updates": self.updates,
        }

    def __repr__(self) -> str:
        return f"Gauge({self.name}={self.value})"


#: Default histogram bucket upper bounds (ms-scale quantities).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0
)


class Histogram:
    """A fixed-bucket histogram with exact count/sum/min/max.

    Buckets are upper bounds; observations beyond the last bound land in
    an implicit overflow bucket.  Mean/extrema are exact regardless of
    bucketing, so detection-latency statistics stay precise.
    """

    __slots__ = ("name", "bounds", "counts", "count", "sum", "min", "max")

    kind = "histogram"

    def __init__(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.name = name
        self.bounds = bounds
        self.counts = [0] * (len(bounds) + 1)  # +1 overflow
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, value: float) -> None:
        # bisect_left: a value equal to a bound belongs to that bound's
        # bucket (Prometheus-style inclusive "le" upper bounds).
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
            "buckets": [
                {"le": bound, "count": count}
                for bound, count in zip(self.bounds, self.counts)
            ]
            + [{"le": None, "count": self.counts[-1]}],
        }

    def __repr__(self) -> str:
        return f"Histogram({self.name}, n={self.count})"


class TimeSeries:
    """A ``(virtual time, value)`` sample stream with running extrema.

    Samples are appended in virtual-time order by construction (channels
    sample at the event that changed their state).  ``max_samples`` bounds
    memory on very long runs: when exceeded, every other retained sample
    is dropped and the stride doubles — peak/valley are tracked exactly
    either way, so Table-2-style maxima never decimate away.
    """

    __slots__ = ("name", "times", "values", "max_samples", "_stride",
                 "_skip", "count", "min", "max", "last")

    kind = "timeseries"

    def __init__(self, name: str, max_samples: int = 100_000) -> None:
        if max_samples < 2:
            raise ValueError("max_samples must be >= 2")
        self.name = name
        self.times: List[float] = []
        self.values: List[float] = []
        self.max_samples = max_samples
        self._stride = 1
        self._skip = 0
        self.count = 0
        self.min: Optional[float] = None
        self.max: Optional[float] = None
        self.last: Optional[float] = None

    def append(self, time: float, value: float) -> None:
        self.count += 1
        self.last = value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if self._skip:
            self._skip -= 1
            return
        self._skip = self._stride - 1
        self.times.append(time)
        self.values.append(value)
        if len(self.times) >= self.max_samples:
            self.times = self.times[::2]
            self.values = self.values[::2]
            self._stride *= 2

    def samples(self) -> List[Tuple[float, float]]:
        return list(zip(self.times, self.values))

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "count": self.count,
            "min": self.min,
            "max": self.max,
            "last": self.last,
            "retained": len(self.times),
        }

    def __repr__(self) -> str:
        return f"TimeSeries({self.name}, n={self.count})"


class _NullInstrument:
    """Shared do-nothing stand-in handed out by a disabled registry."""

    __slots__ = ()

    kind = "null"
    name = "<disabled>"
    value = 0
    count = 0

    def inc(self, amount: int = 1) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass

    def append(self, time: float, value: float) -> None:
        pass

    def as_dict(self) -> Dict[str, object]:
        return {"kind": self.kind}


_NULL = _NullInstrument()


class MetricsRegistry:
    """Named instruments for one run.

    Instrument factories are get-or-create: asking twice for the same name
    returns the same object (a name collision across instrument kinds is
    an error).  A registry constructed with ``enabled=False`` — or the
    module-level :data:`DISABLED` singleton — hands out a shared no-op
    instrument and reports ``enabled = False``, which instrumented
    components use to skip creating (and guarding) per-sample hooks
    entirely.
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self._instruments: Dict[str, object] = {}

    # -- factories ----------------------------------------------------------

    def _get_or_create(self, name: str, cls, *args):
        if not self.enabled:
            return _NULL
        instrument = self._instruments.get(name)
        if instrument is None:
            instrument = cls(name, *args)
            self._instruments[name] = instrument
        elif not isinstance(instrument, cls):
            raise ValueError(
                f"metric {name!r} already registered as "
                f"{instrument.kind}, not {cls.kind}"
            )
        return instrument

    def counter(self, name: str) -> Counter:
        return self._get_or_create(name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get_or_create(name, Gauge)

    def histogram(
        self, name: str, buckets: Sequence[float] = DEFAULT_BUCKETS
    ) -> Histogram:
        return self._get_or_create(name, Histogram, buckets)

    def timeseries(self, name: str, max_samples: int = 100_000) -> TimeSeries:
        return self._get_or_create(name, TimeSeries, max_samples)

    # -- access -------------------------------------------------------------

    def get(self, name: str):
        """The instrument registered under ``name``, or ``None``."""
        return self._instruments.get(name)

    def names(self) -> List[str]:
        return sorted(self._instruments)

    def __contains__(self, name: str) -> bool:
        return name in self._instruments

    def snapshot(self) -> Dict[str, Dict[str, object]]:
        """Plain-data dump of every instrument (JSON-serialisable)."""
        return {
            name: self._instruments[name].as_dict()
            for name in sorted(self._instruments)
        }

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, {len(self._instruments)} metrics)"


#: Shared always-disabled registry: pass where a registry is required but
#: instrumentation must stay off (the no-op default of the hot paths).
DISABLED = MetricsRegistry(enabled=False)
