"""The structured run ledger (``repro.ledger/1``).

An append-only JSONL journal of everything a sweep or campaign does,
written *while it runs* so progress is observable from outside the
process (``repro top``, the ``--status-port`` endpoint) and replayable
after it finishes or dies:

* a ``header`` record first (schema tag, writer fingerprint, free-form
  meta), then one record per observable step: ``sweep-start``,
  ``task-submitted``, ``task-finished`` (with the worker's mergeable
  :class:`~repro.obs.sketch.MetricsSnapshot`, injection/detection
  instants, cache-hit flag and worker fingerprint), ``sweep-end``,
  and the campaign framing ``campaign-start`` / ``scenario-verdict`` /
  ``campaign-end``;
* every record is one JSON line; lines reach the file in **single
  O_APPEND writes** (one record or a batch of whole records per write,
  never a fragment), so concurrent writers (e.g. a campaign and a
  nested shrink sweep) interleave whole records rather than shearing
  bytes.  Hot records (task submissions/completions, verdicts) are
  buffered and flushed on run boundaries, buffer size, or a staleness
  interval (:data:`FLUSH_INTERVAL_S`) — streaming costs a bounded
  handful of syscalls per sweep instead of two per task;
* :func:`read_ledger` is the replay half: it tolerates a truncated
  final line (the writer died mid-record), foreign garbage lines and a
  schema-version mismatch, degrading to warnings plus a partial replay
  — mirroring the exec result-cache corruption policy.

The ledger is pure observability: nothing in it feeds back into
execution, so streaming on/off cannot change simulation behaviour
(golden-trace byte-identity is asserted with streaming enabled).
"""

from __future__ import annotations

import io
import json
import os
import platform
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.sketch import MetricsSnapshot

#: Schema identifier written in the header record of every ledger.
LEDGER_SCHEMA = "repro.ledger/1"

#: Record types the replay understands (anything else warns + skips).
RECORD_TYPES = (
    "header",
    "sweep-start",
    "task-submitted",
    "task-finished",
    "sweep-end",
    "campaign-start",
    "scenario-verdict",
    "campaign-end",
    "mttf-start",
    "mttf-cycle",
    "mttf-end",
)


def writer_fingerprint() -> Dict[str, Any]:
    """Identity of the writing process (embedded in header records)."""
    return {
        "pid": os.getpid(),
        "host": platform.node(),
        "python": platform.python_version(),
    }


#: Shared compact encoder: building a ``JSONEncoder`` per record is
#: measurable on the streaming hot path (two records per task).
_ENCODER = json.JSONEncoder(sort_keys=True, separators=(",", ":"))

#: Record types written through to disk immediately: run and phase
#: boundaries, whose prompt visibility the live surface relies on.
#: Everything else (the per-task hot records) rides the flush policy.
_FLUSH_TYPES = frozenset((
    "header",
    "sweep-start",
    "sweep-end",
    "campaign-start",
    "campaign-end",
    "mttf-start",
    "mttf-end",
))

#: Default maximum staleness of buffered hot records, seconds.  A
#: ``repro top`` watcher sees completions at most this far behind; a
#: writer dying mid-run loses at most this much of the tail (the replay
#: already tolerates a ragged tail by design).
FLUSH_INTERVAL_S = 0.25

#: Flush when the buffered batch grows past this many bytes.
_FLUSH_BYTES = 8192


class LedgerWriter:
    """Append-only writer of one ``repro.ledger/1`` JSONL file.

    Opens the file in append mode and emits a ``header`` record only
    when this writer starts the file — a second writer appending to an
    existing ledger (interleaved-writer mode) skips the header, so a
    replay sees exactly one.
    """

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Dict[str, Any]] = None,
        flush_interval: float = FLUSH_INTERVAL_S,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.flush_interval = flush_interval
        fresh = not self.path.exists() or self.path.stat().st_size == 0
        # Unbuffered binary append: each write() is one O_APPEND syscall
        # of one-or-more *whole* lines — no stdio layer re-fragmenting
        # the batch boundaries we choose here.
        self._handle: Optional[io.RawIOBase] = open(
            self.path, "ab", buffering=0
        )
        self._buffer: List[bytes] = []
        self._buffered_bytes = 0
        self._last_flush = time.monotonic()
        self.records_written = 0
        if fresh:
            self.emit("header", schema=LEDGER_SCHEMA,
                      writer=writer_fingerprint(), meta=meta or {})

    # -- raw emission -------------------------------------------------------

    def emit(self, record_type: str, **fields: Any) -> None:
        """Append one record (a no-op after :meth:`close`)."""
        if self._handle is None:
            return
        record = {"type": record_type, "ts": time.time()}
        record.update(fields)
        line = (_ENCODER.encode(record) + "\n").encode("utf-8")
        self._buffer.append(line)
        self._buffered_bytes += len(line)
        self.records_written += 1
        if (
            record_type in _FLUSH_TYPES
            or self.flush_interval <= 0
            or self._buffered_bytes >= _FLUSH_BYTES
            or time.monotonic() - self._last_flush >= self.flush_interval
        ):
            self.flush()

    def flush(self) -> None:
        """Write every buffered record to disk in one O_APPEND call."""
        if self._handle is not None and self._buffer:
            self._handle.write(b"".join(self._buffer))
            self._buffer.clear()
            self._buffered_bytes = 0
        self._last_flush = time.monotonic()

    # -- typed convenience emitters ----------------------------------------

    def sweep_start(self, tasks: int, jobs: int) -> None:
        self.emit("sweep-start", tasks=tasks, jobs=jobs)

    def task_submitted(self, task: int, kind: str,
                       digest: Optional[str] = None) -> None:
        self.emit("task-submitted", task=task, kind=kind, digest=digest)

    def task_finished(
        self,
        task: int,
        result,
        cache_hit: bool = False,
        deduped: bool = False,
    ) -> None:
        """Record one completed task from its ``TaskResult``.

        ``deduped=True`` marks a task that shared another task's result
        (same content digest within the batch) rather than executing —
        its record repeats the leader's result fields.
        """
        detections = [
            {"t": record.time, "site": record.site,
             "mechanism": record.mechanism}
            for record in result.detections
        ]
        self.emit(
            "task-finished",
            task=task,
            ok=result.ok,
            error=result.error,
            cache_hit=cache_hit,
            deduped=deduped,
            wall_s=result.wall_time_s,
            worker=result.worker,
            injected_at=result.injected_at,
            detections=detections,
            metrics=result.metrics,
        )

    def sweep_end(self, stats: Dict[str, Any]) -> None:
        self.emit("sweep-end", stats=stats)

    def campaign_start(self, seed: int, budget: int, scenarios: int,
                       oracles: List[str]) -> None:
        self.emit("campaign-start", seed=seed, budget=budget,
                  scenarios=scenarios, oracles=oracles)

    def scenario_verdict(self, index: int, digest: str, label: str,
                         verdict: str,
                         violations: List[Dict[str, str]]) -> None:
        self.emit("scenario-verdict", index=index, digest=digest,
                  label=label, verdict=verdict, violations=violations)

    def campaign_end(self, digest: str, verdicts: Dict[str, int],
                     ok: bool, stream: Dict[str, Any]) -> None:
        self.emit("campaign-end", digest=digest, verdicts=verdicts,
                  ok=ok, stream=stream)

    def mttf_start(self, seed: int, max_cycles: int,
                   recovery: Dict[str, Any]) -> None:
        self.emit("mttf-start", seed=seed, max_cycles=max_cycles,
                  recovery=recovery)

    def mttf_cycle(self, cycle: int, verdict: str,
                   ttf_ms: Optional[float], mttr_ms: Optional[float],
                   availability: Optional[float]) -> None:
        """One inject→detect→recover cycle; ``availability`` is the
        running estimate after this cycle."""
        self.emit("mttf-cycle", cycle=cycle, verdict=verdict,
                  ttf_ms=ttf_ms, mttr_ms=mttr_ms,
                  availability=availability)

    def mttf_end(self, cycles: int, mttf_ms: Optional[float],
                 mttr_ms: Optional[float],
                 availability: Optional[float], converged: bool,
                 ok: bool) -> None:
        self.emit("mttf-end", cycles=cycles, mttf_ms=mttf_ms,
                  mttr_ms=mttr_ms, availability=availability,
                  converged=converged, ok=ok)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        if self._handle is not None:
            self.flush()
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "LedgerWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"LedgerWriter({self.path}, {self.records_written} records)"


@dataclass
class LedgerReplay:
    """Everything :func:`read_ledger` recovered from one ledger file."""

    path: str
    records: List[Dict[str, Any]] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.warnings

    def by_type(self, record_type: str) -> List[Dict[str, Any]]:
        return [r for r in self.records if r.get("type") == record_type]

    def __repr__(self) -> str:
        return (f"LedgerReplay({self.path!r}, {len(self.records)} records, "
                f"{len(self.warnings)} warning(s))")


def read_ledger(path: Union[str, Path]) -> LedgerReplay:
    """Parse one ledger file, tolerating every corruption the writer's
    failure modes can produce.

    * **truncated final line** (writer died mid-record): warn, drop it;
    * **undecodable interior line** (a foreign writer sheared a record):
      warn, skip it, keep replaying;
    * **schema-version mismatch** in the header: warn, then still
      replay every record whose type is known — a newer ledger degrades
      to a partial view instead of an error;
    * **missing header**: warn and replay what is there.
    """
    path = Path(path)
    replay = LedgerReplay(path=str(path))
    try:
        raw = path.read_bytes()
    except OSError as error:
        replay.warnings.append(f"unreadable ledger: {error}")
        return replay
    if not raw:
        replay.warnings.append("empty ledger")
        return replay

    lines = raw.split(b"\n")
    truncated_tail = lines[-1] != b""
    if not truncated_tail:
        lines = lines[:-1]
    for number, line in enumerate(lines, start=1):
        final = number == len(lines)
        if not line.strip():
            continue
        try:
            record = json.loads(line.decode("utf-8"))
            if not isinstance(record, dict):
                raise ValueError("record is not an object")
        except (ValueError, UnicodeDecodeError) as error:
            if final and truncated_tail:
                replay.warnings.append(
                    f"line {number}: truncated final record dropped"
                )
            else:
                replay.warnings.append(
                    f"line {number}: undecodable record skipped ({error})"
                )
            continue
        record_type = record.get("type")
        if record_type == "header":
            schema = record.get("schema")
            if schema != LEDGER_SCHEMA:
                replay.warnings.append(
                    f"line {number}: ledger schema {schema!r} != "
                    f"{LEDGER_SCHEMA!r}; replaying best-effort"
                )
        elif record_type not in RECORD_TYPES:
            replay.warnings.append(
                f"line {number}: unknown record type {record_type!r} "
                "skipped"
            )
            continue
        replay.records.append(record)

    if not replay.by_type("header"):
        replay.warnings.append("no header record (foreign or pre-schema "
                               "file); replaying best-effort")
    return replay


def merged_snapshot(replay: LedgerReplay) -> MetricsSnapshot:
    """Fleet-wide :class:`MetricsSnapshot` merged over every
    ``task-finished`` record (cache hits included — they carry the
    original execution's snapshot)."""
    merged = MetricsSnapshot()
    for record in replay.by_type("task-finished"):
        payload = record.get("metrics")
        if payload:
            merged.merge(MetricsSnapshot.from_dict(payload))
    return merged


def build_status(replay: LedgerReplay) -> Dict[str, Any]:
    """Reduce a replay to the live status document.

    This is the one shape every surface consumes: ``repro top`` renders
    it, ``/status`` serves it as JSON, and the CI campaign-smoke job
    uploads it as the final status artifact.
    """
    records = replay.records
    first_ts = records[0]["ts"] if records else None
    last_ts = records[-1]["ts"] if records else None
    elapsed = (last_ts - first_ts) if records else None

    submitted = finished = cache_hits = deduped = errors = 0
    workers: Dict[str, Dict[str, float]] = {}
    for record in records:
        record_type = record.get("type")
        if record_type == "task-submitted":
            submitted += 1
        elif record_type == "task-finished":
            finished += 1
            if record.get("cache_hit"):
                cache_hits += 1
            if record.get("ok") is False:
                errors += 1
            if record.get("deduped"):
                # A shared-result duplicate repeats its leader's wall
                # time and worker identity; counting it again would
                # inflate that worker's throughput.
                deduped += 1
                continue
            worker = record.get("worker") or {}
            key = str(worker.get("pid", "?"))
            stat = workers.setdefault(
                key, {"tasks": 0, "events": 0, "wall_s": 0.0}
            )
            stat["tasks"] += 1
            stat["wall_s"] += record.get("wall_s") or 0.0
            metrics = record.get("metrics") or {}
            stat["events"] += (metrics.get("counters") or {}).get(
                "sim.events", 0
            )

    for stat in workers.values():
        stat["events_per_sec"] = (
            stat["events"] / stat["wall_s"] if stat["wall_s"] else None
        )

    total_tasks = None
    for record in replay.by_type("sweep-start"):
        total_tasks = (total_tasks or 0) + record.get("tasks", 0)

    verdicts: Dict[str, int] = {}
    for record in replay.by_type("scenario-verdict"):
        verdict = record.get("verdict", "?")
        verdicts[verdict] = verdicts.get(verdict, 0) + 1

    campaign: Optional[Dict[str, Any]] = None
    starts = replay.by_type("campaign-start")
    if starts:
        start = starts[-1]
        campaign = {
            "seed": start.get("seed"),
            "budget": start.get("budget"),
            "scenarios": start.get("scenarios"),
            "judged": len(replay.by_type("scenario-verdict")),
            "digest": None,
            "ok": None,
        }
    ends = replay.by_type("campaign-end")
    if ends:
        end = ends[-1]
        campaign = campaign or {}
        campaign["digest"] = end.get("digest")
        campaign["ok"] = end.get("ok")
        campaign["verdicts"] = end.get("verdicts")

    mttf: Optional[Dict[str, Any]] = None
    mttf_starts = replay.by_type("mttf-start")
    mttf_cycles = replay.by_type("mttf-cycle")
    if mttf_starts:
        start = mttf_starts[-1]
        last_cycle = mttf_cycles[-1] if mttf_cycles else {}
        mttf = {
            "seed": start.get("seed"),
            "max_cycles": start.get("max_cycles"),
            "cycles": len(mttf_cycles),
            "availability": last_cycle.get("availability"),
            "mttf_ms": None,
            "mttr_ms": None,
            "converged": None,
            "ok": None,
        }
    mttf_ends = replay.by_type("mttf-end")
    if mttf_ends:
        end = mttf_ends[-1]
        mttf = mttf or {}
        mttf.update({
            "cycles": end.get("cycles"),
            "mttf_ms": end.get("mttf_ms"),
            "mttr_ms": end.get("mttr_ms"),
            "availability": end.get("availability"),
            "converged": end.get("converged"),
            "ok": end.get("ok"),
        })

    complete = bool(ends) or bool(mttf_ends) or (
        not starts and not mttf_starts
        and bool(replay.by_type("sweep-end"))
    )

    eta_s = None
    done_fraction = None
    if total_tasks:
        done_fraction = finished / total_tasks
        remaining = total_tasks - finished
        if finished and elapsed and remaining > 0:
            eta_s = elapsed * remaining / finished
        elif remaining == 0:
            eta_s = 0.0

    merged = merged_snapshot(replay)
    return {
        "schema": LEDGER_SCHEMA,
        "path": replay.path,
        "records": len(records),
        "warnings": list(replay.warnings),
        "complete": complete,
        "progress": {
            "tasks": total_tasks,
            "submitted": submitted,
            "finished": finished,
            "cache_hits": cache_hits,
            "deduped": deduped,
            "errors": errors,
            "done_fraction": done_fraction,
            "elapsed_s": elapsed,
            "eta_s": eta_s,
        },
        "verdicts": verdicts,
        "campaign": campaign,
        "mttf": mttf,
        "workers": workers,
        "percentiles": merged.percentile_digests(),
        "counters": dict(sorted(merged.counters.items())),
        "gauges": {name: dict(stat)
                   for name, stat in sorted(merged.gauges.items())},
    }


def read_status(path: Union[str, Path]) -> Dict[str, Any]:
    """One-call convenience: replay ``path`` and build its status."""
    return build_status(read_ledger(path))
