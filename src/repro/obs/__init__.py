"""Unified telemetry layer: metrics, run timeline, trace export, reports.

The package is organised as two halves plus two consumers:

* :mod:`repro.obs.metrics` — aggregate instruments (counters, gauges,
  histograms, time series) behind a :class:`MetricsRegistry` that is free
  when disabled;
* :mod:`repro.obs.timeline` — the event-shaped record of one run
  (process transitions, fault injections, detections) plus the
  :class:`Observability` bundle runs are observed through;
* :mod:`repro.obs.chrometrace` — Chrome-trace-event (Perfetto) export;
* :mod:`repro.obs.report` — the ``repro report`` run-report builder;
* the streaming half (``repro.obs.stream``): :mod:`repro.obs.sketch`
  (mergeable metric sketches workers ship on TaskResults),
  :mod:`repro.obs.ledger` (the ``repro.ledger/1`` append-only JSONL
  run ledger with tolerant replay) and :mod:`repro.obs.live` (the
  ``repro top`` renderer, Prometheus text exposition and the read-only
  HTTP status endpoint).
"""

from repro.obs.metrics import (
    DISABLED,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    TimeSeries,
)
from repro.obs.timeline import (
    InjectionMark,
    Observability,
    RunTimeline,
    Transition,
)
from repro.obs.chrometrace import (
    build_chrome_trace,
    build_trace_events,
    write_chrome_trace,
)
from repro.obs.report import (
    REPORT_SCHEMA,
    SCHEMA_ID,
    build_run_report,
    render_report,
    validate_report,
)
from repro.obs.rtccache import (
    record_rtc_cache_gauges,
    rtc_cache_stats,
    summarize_cache_gauges,
)
from repro.obs.sketch import (
    SNAPSHOT_SCHEMA,
    LogHistogramSketch,
    MetricsSnapshot,
)
from repro.obs.ledger import (
    LEDGER_SCHEMA,
    LedgerReplay,
    LedgerWriter,
    build_status,
    merged_snapshot,
    read_ledger,
    read_status,
)
from repro.obs.live import (
    StatusServer,
    render_prometheus,
    render_top,
)

__all__ = [
    "DISABLED",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TimeSeries",
    "InjectionMark",
    "Observability",
    "RunTimeline",
    "Transition",
    "build_chrome_trace",
    "build_trace_events",
    "write_chrome_trace",
    "REPORT_SCHEMA",
    "SCHEMA_ID",
    "build_run_report",
    "render_report",
    "validate_report",
    "record_rtc_cache_gauges",
    "rtc_cache_stats",
    "summarize_cache_gauges",
    "SNAPSHOT_SCHEMA",
    "LogHistogramSketch",
    "MetricsSnapshot",
    "LEDGER_SCHEMA",
    "LedgerReplay",
    "LedgerWriter",
    "build_status",
    "merged_snapshot",
    "read_ledger",
    "read_status",
    "StatusServer",
    "render_prometheus",
    "render_top",
]
