"""Mergeable metric sketches: fleet-wide aggregation without raw series.

Campaigns and sweeps execute thousands of tasks across worker
processes; shipping every raw detection-latency sample back to the
parent (and onto disk, and over the status endpoint) does not scale.
This module provides the compact, *mergeable* summaries each worker
attaches to its :class:`~repro.exec.results.TaskResult` instead —
extending the ``COPY_STATS`` delta pattern from per-process counters to
full metric state:

* :class:`LogHistogramSketch` — a fixed-bin log-scale histogram.  Bin
  boundaries are powers of a fixed :data:`GAMMA`, so two sketches built
  independently (different workers, different runs) always share the
  same bin grid and merge by adding counts.  Merging is associative and
  commutative (integer bin counts; exact min/max), which makes
  parent-side aggregation order-independent — the property the ledger
  replay relies on.  Quantiles are answered to within one bin
  (≤ ~9 % relative error at the default γ), with ``min``/``max`` exact.
* :class:`MetricsSnapshot` — the named bundle of counters, gauge
  statistics and sketches one task (or one whole fleet) is summarised
  by.  ``merge`` folds another snapshot in; ``as_dict``/``from_dict``
  round-trip through JSON for the run ledger.

Nothing here touches simulator state: sketches are built *after* a run
finishes, from the already-reduced result, so streaming cannot perturb
the event order (golden-trace byte-identity holds with streaming on).
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Optional

#: Schema tag embedded in serialised snapshots.
SNAPSHOT_SCHEMA = "repro.metrics-snapshot/1"

#: Fixed bin growth factor: γ = 2**(1/4) ≈ 1.189.  A value in bin ``k``
#: lies in ``(γ**k, γ**(k+1)]``; the bin midpoint mis-states it by at
#: most ``sqrt(γ) - 1`` ≈ 9 %.  Part of the sketch wire format — never
#: change without bumping :data:`SNAPSHOT_SCHEMA`.
GAMMA = 2.0 ** 0.25

_LOG_GAMMA = math.log(GAMMA)

#: Bin index clamp: indices outside [MIN_BIN, MAX_BIN] saturate into the
#: edge bins, keeping the bin *universe* fixed and finite (≈ 1e-10 ms to
#: 1e13 ms at the default γ — far beyond any latency this repo models).
MIN_BIN = -192
MAX_BIN = 256


class LogHistogramSketch:
    """Fixed-bin log-scale histogram with exact count/sum/min/max.

    Non-positive observations land in a dedicated ``zero`` bin (the
    log grid only covers positive values); quantiles treat them as 0.0.
    Bins are stored sparsely — campaigns observe a few thousand
    latencies spanning a handful of decades, so a dict of a few dozen
    bins replaces the raw series.
    """

    __slots__ = ("bins", "zero", "count", "sum", "min", "max")

    kind = "sketch"

    def __init__(self) -> None:
        self.bins: Dict[int, int] = {}
        self.zero = 0
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    # -- recording ----------------------------------------------------------

    @staticmethod
    def bin_index(value: float) -> int:
        """The fixed grid index of a positive value."""
        index = math.floor(math.log(value) / _LOG_GAMMA)
        return max(MIN_BIN, min(MAX_BIN, index))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value
        if value <= 0.0:
            self.zero += 1
            return
        index = self.bin_index(value)
        self.bins[index] = self.bins.get(index, 0) + 1

    # -- merging ------------------------------------------------------------

    def merge(self, other: "LogHistogramSketch") -> "LogHistogramSketch":
        """Fold ``other`` into this sketch (returns ``self``).

        Associative and commutative on everything a quantile reads
        (integer bin counts, exact min/max); ``sum`` commutes up to
        float rounding.
        """
        for index, count in other.bins.items():
            self.bins[index] = self.bins.get(index, 0) + count
        self.zero += other.zero
        self.count += other.count
        self.sum += other.sum
        if other.min is not None and (self.min is None
                                      or other.min < self.min):
            self.min = other.min
        if other.max is not None and (self.max is None
                                      or other.max > self.max):
            self.max = other.max
        return self

    @classmethod
    def merged(cls, sketches: Iterable["LogHistogramSketch"]
               ) -> "LogHistogramSketch":
        """A fresh sketch holding the union of ``sketches``."""
        out = cls()
        for sketch in sketches:
            out.merge(sketch)
        return out

    # -- queries ------------------------------------------------------------

    @property
    def mean(self) -> Optional[float]:
        return self.sum / self.count if self.count else None

    def quantile(self, q: float) -> Optional[float]:
        """The q-quantile (0 ≤ q ≤ 1), ``None`` on an empty sketch.

        Answered from the bin grid: the bin holding the target rank
        reports its geometric midpoint, clamped to the exact observed
        ``[min, max]`` (so ``quantile(0) == min``, ``quantile(1) ==
        max`` exactly).
        """
        if not self.count:
            return None
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if q == 0.0:
            return self.min
        if q == 1.0:
            return self.max
        rank = q * (self.count - 1)
        cumulative = self.zero
        value: Optional[float] = 0.0 if self.zero else None
        if cumulative <= rank or value is None:
            for index in sorted(self.bins):
                cumulative += self.bins[index]
                if cumulative > rank:
                    value = GAMMA ** (index + 0.5)
                    break
            else:  # pragma: no cover - rank always lands in some bin
                value = self.max
        assert value is not None
        if self.min is not None:
            value = max(value, self.min)
        if self.max is not None:
            value = min(value, self.max)
        return value

    def percentiles(self) -> Dict[str, Optional[float]]:
        """The standard report digest: p50/p95/max (+ count/mean/min)."""
        return {
            "count": self.count,
            "min": self.min,
            "mean": self.mean,
            "p50": self.quantile(0.50),
            "p95": self.quantile(0.95),
            "max": self.max,
        }

    # -- serialisation ------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "kind": self.kind,
            "bins": {str(index): count
                     for index, count in sorted(self.bins.items())},
            "zero": self.zero,
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "LogHistogramSketch":
        sketch = cls()
        sketch.bins = {int(index): int(count)
                       for index, count in dict(data["bins"]).items()}
        sketch.zero = int(data["zero"])
        sketch.count = int(data["count"])
        sketch.sum = float(data["sum"])
        sketch.min = None if data["min"] is None else float(data["min"])
        sketch.max = None if data["max"] is None else float(data["max"])
        return sketch

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, LogHistogramSketch):
            return NotImplemented
        return (self.bins == other.bins and self.zero == other.zero
                and self.count == other.count and self.min == other.min
                and self.max == other.max)

    def __repr__(self) -> str:
        return (f"LogHistogramSketch(n={self.count}, "
                f"bins={len(self.bins)})")


class MetricsSnapshot:
    """A named, mergeable bundle of counters, gauge stats and sketches.

    * ``counters`` — integer totals; merge adds.
    * ``gauges`` — ``{min, max, sum, n}`` statistics per name; merge
      combines extrema and adds sum/n (mean derivable; deliberately no
      "last" field — last-write-wins is not commutative).
    * ``sketches`` — :class:`LogHistogramSketch` per name; merge merges.

    Every operation is order-independent (up to float rounding in the
    sums), so a fleet-wide snapshot is the same whichever order worker
    results arrive in.
    """

    __slots__ = ("counters", "gauges", "sketches")

    def __init__(self) -> None:
        self.counters: Dict[str, int] = {}
        self.gauges: Dict[str, Dict[str, float]] = {}
        self.sketches: Dict[str, LogHistogramSketch] = {}

    # -- recording ----------------------------------------------------------

    def count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + int(amount)

    def gauge_sample(self, name: str, value: float) -> None:
        value = float(value)
        stat = self.gauges.get(name)
        if stat is None:
            self.gauges[name] = {"min": value, "max": value,
                                 "sum": value, "n": 1}
        else:
            stat["min"] = min(stat["min"], value)
            stat["max"] = max(stat["max"], value)
            stat["sum"] += value
            stat["n"] += 1

    def observe(self, name: str, value: float) -> None:
        sketch = self.sketches.get(name)
        if sketch is None:
            sketch = self.sketches[name] = LogHistogramSketch()
        sketch.observe(value)

    def sketch(self, name: str) -> Optional[LogHistogramSketch]:
        return self.sketches.get(name)

    @property
    def empty(self) -> bool:
        return not (self.counters or self.gauges or self.sketches)

    # -- merging ------------------------------------------------------------

    def merge(self, other: "MetricsSnapshot") -> "MetricsSnapshot":
        """Fold ``other`` in (returns ``self``)."""
        for name, amount in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + amount
        for name, stat in other.gauges.items():
            mine = self.gauges.get(name)
            if mine is None:
                self.gauges[name] = dict(stat)
            else:
                mine["min"] = min(mine["min"], stat["min"])
                mine["max"] = max(mine["max"], stat["max"])
                mine["sum"] += stat["sum"]
                mine["n"] += stat["n"]
        for name, sketch in other.sketches.items():
            mine_sketch = self.sketches.get(name)
            if mine_sketch is None:
                self.sketches[name] = LogHistogramSketch.merged([sketch])
            else:
                mine_sketch.merge(sketch)
        return self

    # -- serialisation ------------------------------------------------------

    def as_dict(self) -> Dict[str, object]:
        return {
            "schema": SNAPSHOT_SCHEMA,
            "counters": dict(sorted(self.counters.items())),
            "gauges": {name: dict(stat)
                       for name, stat in sorted(self.gauges.items())},
            "sketches": {name: sketch.as_dict()
                         for name, sketch in sorted(self.sketches.items())},
        }

    @classmethod
    def from_dict(cls, data: Dict[str, object]) -> "MetricsSnapshot":
        schema = data.get("schema")
        if schema != SNAPSHOT_SCHEMA:
            raise ValueError(
                f"snapshot schema is {schema!r}, expected "
                f"{SNAPSHOT_SCHEMA!r}"
            )
        snapshot = cls()
        snapshot.counters = {str(k): int(v)
                             for k, v in dict(data["counters"]).items()}
        snapshot.gauges = {
            str(k): {"min": float(s["min"]), "max": float(s["max"]),
                     "sum": float(s["sum"]), "n": int(s["n"])}
            for k, s in dict(data["gauges"]).items()
        }
        snapshot.sketches = {
            str(k): LogHistogramSketch.from_dict(v)
            for k, v in dict(data["sketches"]).items()
        }
        return snapshot

    def percentile_digests(self) -> Dict[str, Dict[str, Optional[float]]]:
        """p50/p95/max digest per sketch (the status-surface payload)."""
        return {name: sketch.percentiles()
                for name, sketch in sorted(self.sketches.items())}

    def __repr__(self) -> str:
        return (f"MetricsSnapshot({len(self.counters)} counters, "
                f"{len(self.gauges)} gauges, "
                f"{len(self.sketches)} sketches)")
