"""Chrome-trace-event export: open a run in Perfetto.

Converts one observed run — the :class:`~repro.obs.timeline.RunTimeline`
transition stream plus the :class:`~repro.obs.metrics.MetricsRegistry`
time series — into the Chrome Trace Event JSON format that
https://ui.perfetto.dev (and ``chrome://tracing``) load directly:

* each process becomes a named thread track carrying **"X" complete
  spans**: ``compute`` spans for every service-time delay and
  ``blocked:read`` / ``blocked:write`` spans for every park interval
  (annotated with the channel the process waited on);
* every :class:`~repro.obs.metrics.TimeSeries` instrument (channel fill,
  per-replica ``space_k``, divergence, headroom) becomes a **"C" counter
  track**;
* fault injections and detections become **"i" instant markers** on a
  dedicated ``faults`` track.

Timestamps: the simulator's virtual milliseconds map to trace
microseconds (``ts = ms * 1000``) and ``displayTimeUnit`` is ``"ms"``,
so Perfetto's ruler reads directly in virtual time.
"""

from __future__ import annotations

import json
from typing import Dict, List, Optional

#: pid of the synthetic "process" holding all per-KPN-process tracks.
PID_PROCESSES = 1
#: pid of the synthetic process holding the counter tracks.
PID_COUNTERS = 2
#: tid of the instant-marker track inside PID_PROCESSES.
TID_FAULTS = 0

_MS = 1000.0  # virtual ms -> trace µs


def _span(name: str, tid: int, start_ms: float, dur_ms: float,
          args: Optional[dict] = None) -> dict:
    event = {
        "name": name,
        "ph": "X",
        "pid": PID_PROCESSES,
        "tid": tid,
        "ts": start_ms * _MS,
        "dur": max(dur_ms, 0.0) * _MS,
        "cat": "process",
    }
    if args:
        event["args"] = args
    return event


def _instant(name: str, time_ms: float, args: Optional[dict] = None) -> dict:
    event = {
        "name": name,
        "ph": "i",
        "pid": PID_PROCESSES,
        "tid": TID_FAULTS,
        "ts": time_ms * _MS,
        "s": "g",  # global scope: draw the marker across all tracks
        "cat": "fault",
    }
    if args:
        event["args"] = args
    return event


def build_trace_events(obs) -> List[dict]:
    """Flatten an :class:`~repro.obs.timeline.Observability` bundle into a
    Chrome trace event list (sorted by timestamp)."""
    timeline = obs.timeline
    events: List[dict] = []

    # -- thread metadata ----------------------------------------------------
    events.append({
        "name": "process_name", "ph": "M", "pid": PID_PROCESSES,
        "args": {"name": "kpn processes"},
    })
    events.append({
        "name": "thread_name", "ph": "M", "pid": PID_PROCESSES,
        "tid": TID_FAULTS, "args": {"name": "faults"},
    })
    tids: Dict[str, int] = {}
    for name in timeline.process_names():
        tid = tids[name] = len(tids) + 1
        events.append({
            "name": "thread_name", "ph": "M", "pid": PID_PROCESSES,
            "tid": tid, "args": {"name": name},
        })

    # -- lifecycle spans ----------------------------------------------------
    # Open blocked interval per process: (start_ms, kind, channel).
    open_block: Dict[str, tuple] = {}
    end_of_run = timeline.transitions[-1].time if timeline.transitions else 0.0
    for tr in timeline.transitions:
        tid = tids.setdefault(tr.process, len(tids) + 1)
        if tr.kind == "compute":
            events.append(_span(
                "compute", tid, tr.time, float(tr.detail or 0.0)
            ))
        elif tr.kind in ("block_read", "block_write"):
            open_block[tr.process] = (tr.time, tr.kind, tr.detail)
        elif tr.kind in ("resume", "done", "killed"):
            blocked = open_block.pop(tr.process, None)
            if blocked is not None:
                start, kind, channel = blocked
                label = "blocked:read" if kind == "block_read" \
                    else "blocked:write"
                events.append(_span(
                    label, tid, start, tr.time - start,
                    args={"channel": channel},
                ))
            if tr.kind == "killed":
                events.append(_instant(
                    f"killed {tr.process}", tr.time,
                    args={"process": tr.process},
                ))
    # A process still parked at quiescence: close its span at end of run.
    for process, (start, kind, channel) in open_block.items():
        label = "blocked:read" if kind == "block_read" else "blocked:write"
        events.append(_span(
            label, tids[process], start, end_of_run - start,
            args={"channel": channel, "unresolved": True},
        ))

    # -- counter tracks -----------------------------------------------------
    emitted_counter_meta = False

    def _counter_meta() -> None:
        nonlocal emitted_counter_meta
        if not emitted_counter_meta:
            events.append({
                "name": "process_name", "ph": "M", "pid": PID_COUNTERS,
                "args": {"name": "channel telemetry"},
            })
            emitted_counter_meta = True

    for name in obs.registry.names():
        series = obs.registry.get(name)
        if getattr(series, "kind", None) != "timeseries":
            continue
        _counter_meta()
        for time, value in zip(series.times, series.values):
            events.append({
                "name": name,
                "ph": "C",
                "pid": PID_COUNTERS,
                "ts": time * _MS,
                "args": {"value": value},
            })

    # Partitioned-engine event counters (``sim.partition.<i>.events``)
    # carry one final value, not a series: render each as a two-point
    # counter track (0 at run start, total at end of run) so Perfetto
    # shows per-partition load side by side with the channel telemetry.
    for name in obs.registry.names():
        counter = obs.registry.get(name)
        if getattr(counter, "kind", None) != "counter":
            continue
        if not (name.startswith("sim.partition.")
                and name.endswith(".events")):
            continue
        _counter_meta()
        for time, value in ((0.0, 0), (end_of_run, counter.value)):
            events.append({
                "name": name,
                "ph": "C",
                "pid": PID_COUNTERS,
                "ts": time * _MS,
                "args": {"value": value},
            })

    # -- fault markers ------------------------------------------------------
    for mark in timeline.injections:
        events.append(_instant(
            f"inject {mark.kind} -> replica {mark.replica + 1}",
            mark.time,
            args={"replica": mark.replica, "kind": mark.kind,
                  "processes": list(mark.processes)},
        ))
    for report in timeline.detections:
        events.append(_instant(
            f"detect {report.mechanism} @ {report.site}",
            report.time,
            args={"site": report.site, "replica": report.replica,
                  "mechanism": report.mechanism, "detail": report.detail},
        ))

    events.sort(key=lambda e: e.get("ts", -1.0))
    return events


def build_chrome_trace(obs) -> dict:
    """The full JSON-object trace (``traceEvents`` container format)."""
    return {
        "traceEvents": build_trace_events(obs),
        "displayTimeUnit": "ms",
        "otherData": {"exporter": "repro.obs.chrometrace"},
    }


def write_chrome_trace(obs, path: str) -> dict:
    """Serialise the trace to ``path``; returns the trace dict."""
    trace = build_chrome_trace(obs)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, separators=(",", ":"))
    return trace
