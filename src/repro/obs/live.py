"""Live status surfaces over the run ledger.

Three read-only views of one :mod:`~repro.obs.ledger` status document:

* :func:`render_top` — the ``repro top`` terminal rendering: progress
  bar, ETA, verdict counts, fleet detection-latency percentiles and
  per-worker throughput;
* :func:`render_prometheus` — Prometheus-style text exposition of the
  merged counters, gauges and sketch quantiles (``/metrics``);
* :class:`StatusServer` — a stdlib :mod:`http.server` endpoint
  (``/status`` JSON, ``/metrics`` text) that re-reads the ledger per
  request, so it observes a run that is still appending.

All three consume the ledger file only — they never touch the running
process, so attaching them cannot perturb a simulation.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Any, Dict, List, Optional, Union

from repro.obs.ledger import read_status

#: Width of the ``repro top`` progress bar, in cells.
BAR_WIDTH = 36


def _bar(fraction: Optional[float]) -> str:
    if fraction is None:
        return "[" + "?" * BAR_WIDTH + "]"
    fraction = max(0.0, min(1.0, fraction))
    filled = int(round(fraction * BAR_WIDTH))
    return "[" + "#" * filled + "-" * (BAR_WIDTH - filled) + "]"


def _fmt_s(seconds: Optional[float]) -> str:
    if seconds is None:
        return "?"
    if seconds >= 3600:
        return f"{seconds / 3600:.1f}h"
    if seconds >= 60:
        return f"{seconds / 60:.1f}m"
    return f"{seconds:.1f}s"


def _fmt(value: Optional[float], spec: str = ".2f") -> str:
    return "?" if value is None else format(value, spec)


def render_top(status: Dict[str, Any]) -> str:
    """Terminal rendering of one ledger status document."""
    progress = status["progress"]
    lines: List[str] = []
    state = "complete" if status["complete"] else "running"
    lines.append(f"repro top — {status['path']}  ({state})")

    campaign = status.get("campaign")
    if campaign:
        digest = campaign.get("digest")
        lines.append(
            f"  campaign seed={campaign.get('seed')} "
            f"budget={campaign.get('budget')} "
            f"scenarios={campaign.get('scenarios')} "
            f"judged={campaign.get('judged')}"
            + (f"  digest={digest[:16]}" if digest else "")
        )

    mttf = status.get("mttf")
    if mttf:
        availability = mttf.get("availability")
        lines.append(
            f"  mttf seed={mttf.get('seed')} "
            f"cycles={mttf.get('cycles')}"
            + (f"/{mttf['max_cycles']}" if mttf.get("max_cycles") else "")
            + f"  MTTF={_fmt(mttf.get('mttf_ms'))}ms"
            f"  MTTR={_fmt(mttf.get('mttr_ms'))}ms"
            f"  availability={_fmt(availability, '.6f')}"
            + ("  (converged)" if mttf.get("converged") else "")
        )

    done = progress["finished"]
    total = progress["tasks"]
    pct = progress["done_fraction"]
    lines.append(
        f"  {_bar(pct)} {done}/{total if total is not None else '?'} tasks"
        f"  ({_fmt(None if pct is None else 100 * pct, '.0f')}%)"
        f"  elapsed {_fmt_s(progress['elapsed_s'])}"
        f"  eta {_fmt_s(progress['eta_s'])}"
    )
    lines.append(
        f"  submitted {progress['submitted']}  cache hits "
        f"{progress['cache_hits']}  deduped "
        f"{progress.get('deduped', 0)}  errors {progress['errors']}"
    )

    verdicts = status.get("verdicts") or {}
    if verdicts:
        rendered = "  ".join(
            f"{name}={count}" for name, count in sorted(verdicts.items())
        )
        lines.append(f"  verdicts: {rendered}")

    percentiles = status.get("percentiles") or {}
    latency = percentiles.get("detect.latency_ms")
    if latency and latency.get("count"):
        lines.append(
            f"  detect.latency_ms  n={latency['count']}"
            f"  p50={_fmt(latency['p50'])}"
            f"  p95={_fmt(latency['p95'])}"
            f"  max={_fmt(latency['max'])}"
        )
    counters = status.get("counters") or {}
    false_positives = counters.get("detect.false_positives")
    if false_positives is not None:
        lines.append(
            f"  detections={counters.get('detect.reports', 0)}  "
            f"false positives={false_positives}"
        )

    workers = status.get("workers") or {}
    if workers:
        lines.append("  workers:")
        for pid in sorted(workers):
            stat = workers[pid]
            eps = stat.get("events_per_sec")
            lines.append(
                f"    pid {pid:>7}  {int(stat['tasks']):>4} tasks  "
                f"{int(stat['events']):>9} events  "
                f"{_fmt(eps, ',.0f')} events/s"
            )

    for warning in status.get("warnings") or []:
        lines.append(f"  warning: {warning}")
    return "\n".join(lines)


# -- Prometheus-style exposition -------------------------------------------


def _prom_name(name: str) -> str:
    cleaned = "".join(
        ch if ch.isalnum() or ch == "_" else "_" for ch in name
    )
    if cleaned and cleaned[0].isdigit():
        cleaned = "_" + cleaned
    return f"repro_{cleaned}"


def render_prometheus(status: Dict[str, Any]) -> str:
    """Prometheus text exposition of the merged metric state."""
    lines: List[str] = []
    for name, value in (status.get("counters") or {}).items():
        prom = _prom_name(name) + "_total"
        lines.append(f"# TYPE {prom} counter")
        lines.append(f"{prom} {value}")
    for name, stat in (status.get("gauges") or {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} gauge")
        for suffix in ("min", "max"):
            lines.append(f'{prom}{{stat="{suffix}"}} {stat[suffix]}')
        if stat.get("n"):
            lines.append(
                f'{prom}{{stat="mean"}} {stat["sum"] / stat["n"]}'
            )
    for name, digest in (status.get("percentiles") or {}).items():
        prom = _prom_name(name)
        lines.append(f"# TYPE {prom} summary")
        for quantile, key in (("0.5", "p50"), ("0.95", "p95"),
                              ("1", "max")):
            value = digest.get(key)
            if value is not None:
                lines.append(
                    f'{prom}{{quantile="{quantile}"}} {value}'
                )
        lines.append(f"{prom}_count {digest.get('count', 0)}")
    progress = status.get("progress") or {}
    for key in ("submitted", "finished", "cache_hits", "deduped",
                "errors"):
        prom = _prom_name(f"tasks.{key}")
        lines.append(f"# TYPE {prom} gauge")
        lines.append(f"{prom} {progress.get(key, 0)}")
    return "\n".join(lines) + "\n"


# -- HTTP endpoint ----------------------------------------------------------


class _StatusHandler(BaseHTTPRequestHandler):
    server: "StatusServer"

    def do_GET(self) -> None:  # noqa: N802 (stdlib handler contract)
        try:
            if self.path in ("/status", "/status.json"):
                body = json.dumps(
                    self.server.status(), indent=2, sort_keys=True
                ).encode("utf-8")
                content_type = "application/json"
            elif self.path == "/metrics":
                body = render_prometheus(self.server.status()).encode()
                content_type = "text/plain; version=0.0.4"
            elif self.path == "/":
                body = (
                    "repro status endpoint\n"
                    "  /status  — ledger replay as JSON\n"
                    "  /metrics — Prometheus text exposition\n"
                ).encode("utf-8")
                content_type = "text/plain"
            else:
                self.send_error(404, "unknown path")
                return
        except Exception as error:  # pragma: no cover - defensive
            self.send_error(500, str(error))
            return
        self.send_response(200)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:
        pass  # a status probe must not spam the campaign's stdout


class StatusServer:
    """Read-only HTTP/JSON status endpoint over one ledger file.

    ``port=0`` binds an ephemeral port (the bound port is ``.port``).
    The server re-reads the ledger on every request, so it tracks a run
    in progress; it never writes anything.
    """

    def __init__(self, ledger_path: Union[str, Path], port: int = 0,
                 host: str = "127.0.0.1") -> None:
        self.ledger_path = Path(ledger_path)
        self._httpd = ThreadingHTTPServer((host, port), _StatusHandler)
        self._httpd.status = self.status  # type: ignore[attr-defined]
        self._thread: Optional[threading.Thread] = None

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    def status(self) -> Dict[str, Any]:
        return read_status(self.ledger_path)

    def start(self) -> "StatusServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="repro-status",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "StatusServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"StatusServer({self.ledger_path}, port={self.port})"
