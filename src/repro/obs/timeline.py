"""Run timeline: process lifecycle spans, fault markers, detection latency.

The :class:`RunTimeline` is the event-shaped half of the telemetry layer
(the :mod:`~repro.obs.metrics` registry is the aggregate half).  It
collects three streams from one simulation run:

* **process transitions** — the engine reports every lifecycle edge
  (start, compute delay, blocked-on-read/write, resume, done, killed)
  through :meth:`Simulator.set_transition_hook`; the Perfetto exporter
  turns these into execution spans and blocked intervals;
* **fault markers** — the injector reports the injection instant, the
  :class:`~repro.core.detection.DetectionLog` reports every detection;
* **detection latency** — each (injection, first matching detection) pair
  feeds the ``detect.latency_ms`` histogram, the quantity Eq. 8 bounds.

An :class:`Observability` object bundles a registry with a timeline and is
what run harnesses pass around (``run_duplicated(..., obs=...)``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.detection import FaultReport
from repro.obs.metrics import MetricsRegistry

#: Transition kinds emitted by the engine hook (see Simulator._advance).
TRANSITION_KINDS = (
    "start",      # first advancement of a registered process
    "compute",    # a Delay began; detail = duration (ms)
    "block_read",   # parked / waiting on a read; detail = channel name
    "block_write",  # parked on a write; detail = channel name
    "resume",     # a blocked operation completed
    "done",       # the process generator finished
    "killed",     # fault injection terminated the process
)


@dataclass(frozen=True)
class Transition:
    """One process lifecycle edge at a virtual instant."""

    time: float
    process: str
    kind: str
    detail: Any = None


@dataclass(frozen=True)
class InjectionMark:
    """One armed fault firing."""

    time: float
    replica: int
    kind: str
    processes: Tuple[str, ...] = ()


class RunTimeline:
    """Ordered record of everything observable about one run.

    The timeline is passive: recording never mutates engine or channel
    state, so enabling it cannot perturb the event order (golden-trace
    byte-identity is asserted by the integration tests).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.transitions: List[Transition] = []
        self.injections: List[InjectionMark] = []
        self.detections: List[FaultReport] = []
        self._latency_hist = self.registry.histogram("detect.latency_ms")
        self._report_count = self.registry.counter("detect.reports")

    # -- engine hook --------------------------------------------------------

    def transition(
        self, time: float, process: str, kind: str, detail: Any = None
    ) -> None:
        """Record one lifecycle edge (the simulator's transition hook)."""
        self.transitions.append(Transition(time, process, kind, detail))

    # -- fault markers ------------------------------------------------------

    def mark_injection(
        self,
        time: float,
        replica: int,
        kind: str,
        processes: Tuple[str, ...] = (),
    ) -> None:
        """Record a fault firing (called by the injector)."""
        self.injections.append(InjectionMark(time, replica, kind, processes))

    def on_report(self, report: FaultReport) -> None:
        """DetectionLog observer: record and account one detection."""
        self.detections.append(report)
        self._report_count.inc()
        injected = self.injection_for(report.replica, before=report.time)
        if injected is not None:
            self._latency_hist.observe(report.time - injected.time)

    def watch(self, detection_log) -> None:
        """Subscribe to a :class:`~repro.core.detection.DetectionLog`."""
        detection_log.subscribe(self.on_report)

    # -- queries ------------------------------------------------------------

    def injection_for(
        self, replica: int, before: Optional[float] = None
    ) -> Optional[InjectionMark]:
        """The earliest injection into ``replica`` (optionally ``<= t``)."""
        for mark in self.injections:
            if mark.replica != replica:
                continue
            if before is not None and mark.time > before:
                continue
            return mark
        return None

    def detection_latency(
        self, site: Optional[str] = None
    ) -> Optional[float]:
        """Injection-to-first-detection latency (ms), optionally per site.

        Pre-injection reports (false positives of a deliberately
        under-sized configuration) are excluded, mirroring
        :meth:`FaultInjector.detection_latency`.
        """
        for report in self.detections:
            if site is not None and report.site != site:
                continue
            injected = self.injection_for(report.replica, before=report.time)
            if injected is None:
                continue
            return report.time - injected.time
        return None

    def process_names(self) -> List[str]:
        """Every process that appears in the transition stream."""
        seen = dict.fromkeys(t.process for t in self.transitions)
        return list(seen)

    def __repr__(self) -> str:
        return (
            f"RunTimeline({len(self.transitions)} transitions, "
            f"{len(self.injections)} injections, "
            f"{len(self.detections)} detections)"
        )


@dataclass
class Observability:
    """One run's telemetry bundle: aggregate metrics plus the timeline.

    Pass an instance to ``run_duplicated(..., obs=...)`` (or wire the
    pieces manually: registry into the network/channels, the timeline's
    hooks into the simulator, detection log and injector).
    """

    registry: MetricsRegistry = field(default_factory=MetricsRegistry)
    timeline: RunTimeline = field(default=None)  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.timeline is None:
            self.timeline = RunTimeline(self.registry)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled
