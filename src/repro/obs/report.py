"""Run reports: one duplicated run summarised against its design bounds.

:func:`build_run_report` turns a finished
:class:`~repro.experiments.runner.DuplicatedRun` into a plain-data
dictionary that answers the paper's validation questions for that run:

* did every FIFO stay within the Eq. 3/4 **theoretical capacity**
  (Table 2's "Max. Observed Fill" vs "Theoretical Capacity" comparison)?
* how close did fault-free **divergence** get to the threshold ``D``
  (Eq. 5 headroom)?
* was the injected fault **detected within the Eq. 8 latency bound**?
* what **throughput** did the engine sustain?

The dictionary validates against :data:`REPORT_SCHEMA` (a lightweight
in-repo schema — no external jsonschema dependency) and renders to a
human-readable summary via :func:`render_report`.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

#: Schema identifier embedded in every report.
SCHEMA_ID = "repro.run-report/1"

#: The report contract, checked by :func:`validate_report`.  Leaf values
#: are type tuples; a list entry describes each element's shape.  ``None``
#: is always additionally allowed where the description says "nullable".
REPORT_SCHEMA: Dict[str, Any] = {
    "schema": (str,),                      # == SCHEMA_ID
    "meta": {
        "app": (str,),                     # application name
        "tokens": (int,),                  # producer tokens in the run
        "seed": (int,),                    # RNG seed
        "fault": {                         # nullable: None on fault-free runs
            "kind": (str,),                # "fail-stop" | "rate-degrade"
            "replica": (int,),             # 0-based faulty replica
            "time_ms": (float, int),       # injection instant (virtual ms)
        },
    },
    "throughput": {
        "events": (int,),                  # simulator events processed
        "end_time_ms": (float, int),       # virtual end-of-run instant
        "wall_time_s": (float, int),       # host wall-clock of the run loop
        "events_per_sec": (float, int),    # engine throughput
        "tokens_delivered": (int,),        # tokens the consumer received
        "consumer_stalls": (int,),         # reads that found the FIFO empty
    },
    "channels": [{
        "name": (str,),                    # trace name, e.g. "replicator.R1"
        "max_fill": (int,),                # max observed occupancy
        "capacity": (int,),                # nullable: theoretical capacity
        "within_capacity": (bool,),        # nullable when capacity unknown
    }],
    "divergence": [{
        "site": (str,),                    # "replicator" | "selector"
        "peak": (int, float),              # nullable: max |c_1 - c_2| seen
                                           # before the injection instant
        "threshold": (int,),               # D (Eq. 5)
        "headroom": (int, float),          # nullable: threshold - peak
    }],
    "detection": {
        "injected": (bool,),               # was a fault armed and fired?
        "detected": (bool,),               # any post-injection report?
        "reports": (int,),                 # total FaultReports recorded
        "latency_ms": (float, int),        # nullable: first detection latency
        "bound_ms": (float, int),          # nullable: Eq. 8 bound at the
                                           # detecting site
        "within_bound": (bool,),           # nullable when not detected
        "site": (str,),                    # nullable: first detecting site
        "mechanism": (str,),               # nullable: detecting mechanism
    },
    "metrics": dict,                       # MetricsRegistry.snapshot()
    "zero_copy": dict,                     # COPY_STATS delta of this run
                                           # (copies/copied_bytes/views),
                                           # {} on legacy runs
}


def build_run_report(
    run,
    sizing,
    app_name: str,
    tokens: int,
    seed: int,
    fault=None,
) -> Dict[str, Any]:
    """Summarise one finished duplicated run against its design bounds.

    ``run`` is a :class:`~repro.experiments.runner.DuplicatedRun`,
    ``sizing`` the :class:`~repro.rtc.sizing.SizingResult` it was built
    from, ``fault`` the :class:`~repro.faults.models.FaultSpec` injected
    (``None`` for fault-free runs).  Works with or without an attached
    ``obs`` bundle — divergence peaks and the metrics snapshot are only
    populated when the run was observed with an enabled registry.
    """
    stats = run.stats
    obs = run.obs
    registry = obs.registry if obs is not None else None

    # -- channels: observed fill vs theoretical capacity --------------------
    capacities: Dict[str, Optional[int]] = {
        "replicator.R1": sizing.replicator_capacities[0],
        "replicator.R2": sizing.replicator_capacities[1],
        "selector.S": sizing.selector_fifo_size,
    }
    plain_channels = getattr(run.network.network, "channels", {})
    channels: List[Dict[str, Any]] = []
    for name in sorted(run.max_fills):
        capacity = capacities.get(name)
        if capacity is None:
            channel = plain_channels.get(name)
            capacity = getattr(channel, "capacity", None)
        max_fill = run.max_fills[name]
        channels.append({
            "name": name,
            "max_fill": max_fill,
            "capacity": capacity,
            "within_capacity": (
                None if capacity is None else max_fill <= capacity
            ),
        })

    # -- divergence headroom ------------------------------------------------
    # Headroom is a fault-free quantity: past the injection instant the
    # divergence is *supposed* to cross D, so peaks are taken over the
    # pre-injection samples only (the full run when no fault was armed).
    cutoff = fault.time if fault is not None else None

    def _divergence_entry(site: str, threshold: int) -> Dict[str, Any]:
        peak = None
        if registry is not None:
            series = registry.get(f"chan.{site}.divergence")
            if series is not None and series.count:
                if cutoff is None:
                    peak = series.max
                else:
                    before = [
                        value
                        for time, value in zip(series.times, series.values)
                        if time < cutoff
                    ]
                    peak = max(before) if before else None
        return {
            "site": site,
            "peak": peak,
            "threshold": threshold,
            "headroom": None if peak is None else threshold - peak,
        }

    divergence = [
        _divergence_entry("replicator", sizing.replicator_threshold),
        _divergence_entry("selector", sizing.selector_threshold),
    ]

    # -- detection latency vs Eq. 8 -----------------------------------------
    injected = run.injector is not None and run.injector.injected_at is not None
    latency = run.detection_latency() if injected else None
    first = None
    if injected and latency is not None:
        injected_at = run.injector.injected_at
        for report in run.detections:
            if (report.replica == run.injector.spec.replica
                    and report.time >= injected_at):
                first = report
                break
    bounds = {
        "replicator": sizing.replicator_detection_bound,
        "selector": sizing.selector_detection_bound,
    }
    bound = bounds.get(first.site) if first is not None else None
    detection = {
        "injected": injected,
        "detected": latency is not None,
        "reports": len(run.detections),
        "latency_ms": latency,
        "bound_ms": bound,
        "within_bound": (
            None if latency is None or bound is None else latency <= bound
        ),
        "site": first.site if first is not None else None,
        "mechanism": first.mechanism if first is not None else None,
    }

    fault_meta = None
    if fault is not None:
        fault_meta = {
            "kind": fault.kind,
            "replica": fault.replica,
            "time_ms": fault.time,
        }

    # Publish the RTC memo-effectiveness gauges so the metrics snapshot
    # answers whether the sizing behind this run reused solver work.
    if registry is not None and registry.enabled:
        from repro.obs.rtccache import record_rtc_cache_gauges

        record_rtc_cache_gauges(registry)

    return {
        "schema": SCHEMA_ID,
        "meta": {
            "app": app_name,
            "tokens": tokens,
            "seed": seed,
            "fault": fault_meta,
        },
        "throughput": {
            "events": stats.events if stats else run.events,
            "end_time_ms": stats.end_time if stats else None,
            "wall_time_s": stats.wall_time_s if stats else None,
            "events_per_sec": stats.events_per_sec if stats else None,
            "tokens_delivered": len(run.values),
            "consumer_stalls": run.stalls,
        },
        "channels": channels,
        "divergence": divergence,
        "detection": detection,
        "metrics": (
            registry.snapshot()
            if registry is not None and registry.enabled else {}
        ),
        "zero_copy": getattr(run, "copy_stats", None) or {},
    }


def validate_report(report: Dict[str, Any]) -> None:
    """Check ``report`` against :data:`REPORT_SCHEMA`.

    Raises :class:`ValueError` naming the offending path.  ``None`` is
    accepted for any leaf (the schema marks which fields are expected to
    be nullable; structurally every leaf may legitimately be absent data).
    """
    if report.get("schema") != SCHEMA_ID:
        raise ValueError(
            f"report schema is {report.get('schema')!r}, expected "
            f"{SCHEMA_ID!r}"
        )
    _validate_node(report, REPORT_SCHEMA, path="report")


def _validate_node(value: Any, spec: Any, path: str) -> None:
    if isinstance(spec, dict):
        if not isinstance(value, dict):
            raise ValueError(f"{path}: expected object, got {type(value).__name__}")
        for key, sub in spec.items():
            if key not in value:
                # Nested-object specs may be entirely null (e.g. meta.fault).
                raise ValueError(f"{path}.{key}: missing")
            child = value[key]
            if child is None:
                continue
            _validate_node(child, sub, f"{path}.{key}")
    elif isinstance(spec, list):
        if not isinstance(value, list):
            raise ValueError(f"{path}: expected array, got {type(value).__name__}")
        for index, item in enumerate(value):
            _validate_node(item, spec[0], f"{path}[{index}]")
    elif spec is dict:
        if not isinstance(value, dict):
            raise ValueError(f"{path}: expected object, got {type(value).__name__}")
    else:  # tuple of accepted types; bool must not satisfy (int,)
        if isinstance(value, bool) and bool not in spec:
            raise ValueError(f"{path}: expected {spec}, got bool")
        if not isinstance(value, spec):
            raise ValueError(
                f"{path}: expected {tuple(t.__name__ for t in spec)}, "
                f"got {type(value).__name__}"
            )


def _fmt(value: Optional[float], spec: str) -> str:
    """Format a nullable number; ``None`` (unobserved run) renders as "?"."""
    return "?" if value is None else format(value, spec)


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable rendering of a run report."""
    meta = report["meta"]
    thr = report["throughput"]
    det = report["detection"]
    lines: List[str] = []
    fault = meta["fault"]
    fault_desc = (
        f"{fault['kind']} -> replica {fault['replica'] + 1} "
        f"@ {fault['time_ms']:.1f} ms" if fault else "none"
    )
    lines.append(f"Run report: {meta['app']}")
    lines.append(
        f"  tokens={meta['tokens']}  seed={meta['seed']}  fault={fault_desc}"
    )
    lines.append("")
    lines.append("Throughput")
    lines.append(
        f"  {thr['events']} events to t={_fmt(thr['end_time_ms'], '.1f')} ms "
        f"({_fmt(thr['events_per_sec'], '.0f')} events/s host); "
        f"{thr['tokens_delivered']} tokens delivered, "
        f"{thr['consumer_stalls']} consumer stalls"
    )
    lines.append("")
    lines.append("Channel fill vs theoretical capacity")
    for chan in report["channels"]:
        cap = chan["capacity"]
        verdict = (
            "?" if chan["within_capacity"] is None
            else ("ok" if chan["within_capacity"] else "EXCEEDED")
        )
        lines.append(
            f"  {chan['name']:<16} max fill {chan['max_fill']:>4}"
            f" / capacity {cap if cap is not None else '?':>4}  [{verdict}]"
        )
    lines.append("")
    lines.append("Divergence headroom (Eq. 5)")
    for div in report["divergence"]:
        if div["peak"] is None:
            lines.append(
                f"  {div['site']:<12} peak ?    / D = {div['threshold']}"
                "  (run not observed)"
            )
        else:
            lines.append(
                f"  {div['site']:<12} peak {div['peak']:>4.0f} / D = "
                f"{div['threshold']}  (headroom {div['headroom']:.0f})"
            )
    lines.append("")
    lines.append("Detection")
    if not det["injected"]:
        lines.append(
            f"  no fault injected; {det['reports']} report(s) recorded"
        )
    elif not det["detected"]:
        lines.append("  fault injected but NOT DETECTED")
    else:
        verdict = (
            "?" if det["within_bound"] is None
            else ("within bound" if det["within_bound"] else "BOUND EXCEEDED")
        )
        bound = det["bound_ms"]
        lines.append(
            f"  detected in {det['latency_ms']:.2f} ms at {det['site']} "
            f"({det['mechanism']}); Eq. 8 bound "
            f"{bound:.2f} ms  [{verdict}]"
            if bound is not None else
            f"  detected in {det['latency_ms']:.2f} ms at {det['site']} "
            f"({det['mechanism']})"
        )
    zero_copy = report.get("zero_copy") or {}
    if zero_copy:
        lines.append("")
        lines.append(
            f"Zero-copy: {zero_copy.get('views', 0)} view(s), "
            f"{zero_copy.get('copies', 0)} payload copie(s) "
            f"({zero_copy.get('copied_bytes', 0)} bytes materialised)"
        )
    from repro.obs.rtccache import summarize_cache_gauges

    cache_line = summarize_cache_gauges(report.get("metrics", {}))
    if cache_line is not None:
        lines.append("")
        lines.append(cache_line)
    return "\n".join(lines)
