"""Critical subnetworks with multiple input and output channels.

Section 2 of the paper: "All presented results are equally applicable to
a general model with the critical subnetwork having multiple input and
output channels."  This module constructs that general model:

* one :class:`~repro.core.replicator.ReplicatorChannel` per input
  channel and one :class:`~repro.core.selector.SelectorChannel` per
  output channel, each sized independently by the Section 3.4 formulas
  for its own interface models;
* a :class:`FaultCoordinator` that implements the paper's *per-replica*
  fault semantics: the instant any channel detects a timing fault of
  replica ``k``, every other channel quarantines ``k`` as well — the
  replica is condemned as a whole, its writes are discarded everywhere
  and it can no longer cause back-pressure anywhere.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.core.detection import DetectionLog, FaultReport
from repro.core.replicator import ReplicatorChannel
from repro.core.selector import SelectorChannel
from repro.kpn.channel import ReadEndpoint, WriteEndpoint
from repro.kpn.network import Network
from repro.kpn.process import Process
from repro.kpn.tokens import Token
from repro.kpn.trace import TraceRecorder
from repro.rtc.pjd import PJD
from repro.rtc.sizing import SizingResult, size_duplicated_network


class FaultCoordinator:
    """Propagates per-replica fault verdicts across all channels.

    Subscribes to the shared :class:`DetectionLog`; on every report it
    quarantines the flagged replica on every registered channel (the
    detecting channel's own flag is already set, so the call is a no-op
    there).
    """

    def __init__(self, log: DetectionLog) -> None:
        self.log = log
        self._channels: List = []
        log.subscribe(self._on_report)

    def register(self, channel) -> None:
        """Add a channel exposing ``quarantine(replica)``."""
        self._channels.append(channel)

    def _on_report(self, report: FaultReport) -> None:
        for channel in self._channels:
            channel.quarantine(report.replica)


@dataclass
class MultiPortBlueprint:
    """An application with ``m`` inputs and ``p`` outputs.

    ``make_producers[i]`` / ``make_consumers[j]`` create the boundary
    processes (their ``output`` / ``input`` endpoints are wired by the
    builder); ``make_critical(net, prefix, variant, inputs, outputs)``
    builds one replica reading from the given list of input endpoints
    and writing to the given list of output endpoints.
    """

    name: str
    make_producers: Sequence[Callable[[Network], Process]]
    make_critical: Callable[
        [Network, str, int, List[ReadEndpoint], List[WriteEndpoint]],
        List[Process],
    ]
    make_consumers: Sequence[Callable[[Network], Process]]
    make_priming: Optional[Callable[[int, int], tuple]] = None

    def priming_tokens(self, channel: int, count: int) -> tuple:
        factory = self.make_priming or (
            lambda ch, i: (("__priming__", ch, i), 0)
        )
        tokens = []
        for i in range(count):
            value, size = factory(channel, i)
            tokens.append(
                Token(value=value, seqno=i - count + 1, stamp=0.0,
                      size_bytes=size, origin="priming")
            )
        return tuple(tokens)


@dataclass
class MultiPortSizing:
    """Per-channel Section 3.4 results.

    ``inputs[i]`` / ``outputs[j]`` are full :class:`SizingResult` objects
    computed for channel ``i`` / ``j`` in isolation (the replicator block
    of ``inputs[i]`` and the selector block of ``outputs[j]`` are the
    parts used).
    """

    inputs: List[SizingResult]
    outputs: List[SizingResult]


def size_multiport_network(
    producers: Sequence[PJD],
    replica_inputs: Sequence[Sequence[PJD]],
    replica_outputs: Sequence[Sequence[PJD]],
    consumers: Sequence[PJD],
    horizon: Optional[float] = None,
) -> MultiPortSizing:
    """Size every channel of an ``m``-input / ``p``-output network.

    ``replica_inputs[i]`` lists the two replicas' consumption models on
    input channel ``i``; ``replica_outputs[j]`` their production models
    on output channel ``j``.
    """
    if len(producers) != len(replica_inputs):
        raise ValueError("one replica-input model pair per producer")
    if len(consumers) != len(replica_outputs):
        raise ValueError("one replica-output model pair per consumer")
    inputs = [
        size_duplicated_network(
            producers[i], replica_inputs[i], replica_inputs[i],
            producers[i], horizon
        )
        for i in range(len(producers))
    ]
    outputs = [
        size_duplicated_network(
            consumers[j], replica_outputs[j], replica_outputs[j],
            consumers[j], horizon
        )
        for j in range(len(consumers))
    ]
    return MultiPortSizing(inputs=inputs, outputs=outputs)


@dataclass
class MultiPortNetwork:
    """The assembled multi-port duplicated network."""

    network: Network
    producers: List[Process]
    consumers: List[Process]
    replicators: List[ReplicatorChannel]
    selectors: List[SelectorChannel]
    replicas: List[List[Process]]
    detection_log: DetectionLog
    coordinator: FaultCoordinator

    def replica_process_names(self, replica: int) -> List[str]:
        return [p.name for p in self.replicas[replica]]

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None):
        sim = self.network.instantiate()
        stats = sim.run(until=until, max_events=max_events)
        return sim, stats


def build_multiport(
    blueprint: MultiPortBlueprint,
    sizing: MultiPortSizing,
    recorder: Optional[TraceRecorder] = None,
    strict_single_fault: bool = True,
) -> MultiPortNetwork:
    """Assemble the multi-port duplicated network."""
    recorder = recorder or TraceRecorder()
    net = Network(f"{blueprint.name}-multiport", recorder=recorder)
    log = DetectionLog()
    coordinator = FaultCoordinator(log)

    replicators: List[ReplicatorChannel] = []
    for i, channel_sizing in enumerate(sizing.inputs):
        replicator = ReplicatorChannel(
            f"replicator{i}",
            capacities=channel_sizing.replicator_capacities,
            divergence_threshold=channel_sizing.replicator_threshold,
            traces=(
                recorder.channel(f"replicator{i}.R1"),
                recorder.channel(f"replicator{i}.R2"),
            ),
            detection_log=log,
            strict_single_fault=strict_single_fault,
        )
        net.add_channel(replicator)
        coordinator.register(replicator)
        replicators.append(replicator)

    selectors: List[SelectorChannel] = []
    for j, channel_sizing in enumerate(sizing.outputs):
        selector = SelectorChannel(
            f"selector{j}",
            capacities=channel_sizing.selector_capacities,
            divergence_threshold=channel_sizing.selector_threshold,
            trace=recorder.channel(f"selector{j}.S"),
            detection_log=log,
            strict_single_fault=strict_single_fault,
            priming_tokens=blueprint.priming_tokens(
                j, channel_sizing.selector_priming
            ),
        )
        net.add_channel(selector)
        coordinator.register(selector)
        selectors.append(selector)

    producers = []
    for i, factory in enumerate(blueprint.make_producers):
        producer = factory(net)
        producer.output = replicators[i].writer
        producers.append(producer)
    consumers = []
    for j, factory in enumerate(blueprint.make_consumers):
        consumer = factory(net)
        consumer.input = selectors[j].reader
        consumers.append(consumer)

    replicas: List[List[Process]] = []
    for variant in (0, 1):
        inputs = [r.reader(variant) for r in replicators]
        outputs = [s.writer(variant) for s in selectors]
        processes = blueprint.make_critical(
            net, f"R{variant + 1}", variant, inputs, outputs
        )
        replicas.append(processes)

    return MultiPortNetwork(
        network=net,
        producers=producers,
        consumers=consumers,
        replicators=replicators,
        selectors=selectors,
        replicas=replicas,
        detection_log=log,
        coordinator=coordinator,
    )
