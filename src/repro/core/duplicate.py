"""Constructing reference and duplicated process networks (Figure 1).

An application is described once by a :class:`NetworkBlueprint` — how to
build its producer, its critical subnetwork and its consumer — and this
module assembles either topology from it:

* :func:`build_reference` — ``P -> F_P -> critical -> F_C -> C`` (the
  un-replicated network at the top of Figure 1);
* :func:`build_duplicated` — ``P -> replicator -> {R_1, R_2} -> selector
  -> C`` (the bottom of Figure 1), parameterised by a
  :class:`~repro.rtc.sizing.SizingResult`.

Design diversity between replicas (Section 2: "sufficient design diversity
in order to prevent common-mode faults") is expressed by the ``variant``
index passed to the critical-subnetwork builder: variant 0 and variant 1
may use different internal timing (the paper captures the diversity as
different jitter values, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

from repro.core.detection import DetectionLog
from repro.core.overhead import OpCounter
from repro.core.replicator import ReplicatorChannel
from repro.core.selector import SelectorChannel
from repro.kpn.channel import Fifo, ReadEndpoint, WriteEndpoint
from repro.kpn.network import Network
from repro.kpn.process import Process
from repro.kpn.tokens import Token
from repro.kpn.trace import TraceRecorder
from repro.rtc.sizing import SizingResult

#: Builder signature for the critical subnetwork: it must add its processes
#: (and any internal channels) to the network, wiring the entry process to
#: read from ``input_ep`` and the exit process to write to ``output_ep``.
CriticalBuilder = Callable[
    [Network, str, int, ReadEndpoint, WriteEndpoint], List[Process]
]


@dataclass
class NetworkBlueprint:
    """One application, buildable as either topology.

    Attributes
    ----------
    name:
        Application name (network names derive from it).
    make_producer:
        ``f(net) -> Process`` adding the producer; its ``output`` endpoint
        is wired by the builders.
    make_critical:
        ``f(net, prefix, variant, input_ep, output_ep) -> [Process]``
        adding one copy of the critical subnetwork.  ``variant`` selects
        the design-diversity variant (0 or 1).
    make_consumer:
        ``f(net) -> Process`` adding the consumer; its ``input`` endpoint
        is wired by the builders.
    transfer_latency:
        Optional ``f(token) -> ms`` applied on the replicator/selector and
        reference FIFOs (the SCC communication model).
    make_priming:
        ``f(i) -> (value, size_bytes)`` producing the payload of the
        ``i``-th priming token (Eq. 4 initial fill).  Defaults to a
        generic marker payload; applications provide blank frames /
        silence samples so consumers can process them uniformly.
    """

    name: str
    make_producer: Callable[[Network], Process]
    make_critical: CriticalBuilder
    make_consumer: Callable[[Network], Process]
    transfer_latency: Optional[Callable[[Token], float]] = None
    make_priming: Optional[Callable[[int], tuple]] = None

    def priming_tokens(self, count: int) -> tuple:
        """Build ``count`` priming tokens (seqnos ``<= 0`` so application
        tokens keep their 1-based numbering)."""
        factory = self.make_priming or (lambda i: (("__priming__", i), 0))
        tokens = []
        for i in range(count):
            value, size = factory(i)
            tokens.append(
                Token(
                    value=value,
                    seqno=i - count + 1,
                    stamp=0.0,
                    size_bytes=size,
                    origin="priming",
                )
            )
        return tuple(tokens)


@dataclass
class ReferenceNetwork:
    """The assembled un-replicated network and its interesting handles."""

    network: Network
    producer: Process
    consumer: Process
    input_fifo: Fifo
    output_fifo: Fifo
    critical_processes: List[Process] = field(default_factory=list)

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        """Run to quiescence; returns ``(simulator, stats)``."""
        return self.network.run(until=until, max_events=max_events)


@dataclass
class DuplicatedNetwork:
    """The assembled duplicated network and its interesting handles."""

    network: Network
    producer: Process
    consumer: Process
    replicator: ReplicatorChannel
    selector: SelectorChannel
    replicas: List[List[Process]]
    detection_log: DetectionLog
    replicator_ops: OpCounter
    selector_ops: OpCounter

    def replica_process_names(self, replica: int) -> List[str]:
        """Names of all processes belonging to replica ``replica``."""
        return [p.name for p in self.replicas[replica]]

    def run(self, until: Optional[float] = None, max_events: Optional[int] = None):
        """Run to quiescence; returns ``(simulator, stats)``."""
        return self.network.run(until=until, max_events=max_events)


def build_reference(
    blueprint: NetworkBlueprint,
    input_capacity: int,
    output_capacity: int,
    variant: int = 0,
    initial_fill: int = 0,
    recorder: Optional[TraceRecorder] = None,
) -> ReferenceNetwork:
    """Assemble the reference network ``P -> F_P -> critical -> F_C -> C``.

    ``input_capacity`` / ``output_capacity`` are ``|F_P|`` / ``|F_C|``
    (Eq. 3); ``initial_fill`` pre-fills ``F_C`` with priming tokens
    (Eq. 4); ``variant`` selects which design variant of the critical
    subnetwork runs (0 matches replica 1 of the duplicated network).
    """
    net = Network(f"{blueprint.name}-reference", recorder=recorder)
    producer = blueprint.make_producer(net)
    consumer = blueprint.make_consumer(net)
    input_fifo = net.add_fifo(
        "F_P", input_capacity, transfer_latency=blueprint.transfer_latency
    )
    output_fifo = net.add_fifo(
        "F_C",
        output_capacity,
        transfer_latency=blueprint.transfer_latency,
        initial_tokens=blueprint.priming_tokens(initial_fill),
    )
    producer.output = input_fifo.writer
    consumer.input = output_fifo.reader
    critical = blueprint.make_critical(
        net, "ref", variant, input_fifo.reader, output_fifo.writer
    )
    return ReferenceNetwork(
        network=net,
        producer=producer,
        consumer=consumer,
        input_fifo=input_fifo,
        output_fifo=output_fifo,
        critical_processes=critical,
    )


def build_duplicated(
    blueprint: NetworkBlueprint,
    sizing: SizingResult,
    replicator_divergence: bool = True,
    verify_duplicates: bool = False,
    strict_single_fault: bool = True,
    recorder: Optional[TraceRecorder] = None,
    selector_stall_detection: bool = True,
    metrics=None,
) -> DuplicatedNetwork:
    """Assemble the duplicated network of Figure 1 (bottom).

    The replicator and selector are parameterised from ``sizing``:
    capacities from Eq. 3/4, divergence thresholds from Eq. 5.
    ``replicator_divergence=False`` restricts the replicator to the
    occupancy-based detection only (the paper's primary mechanism there).
    ``metrics`` (a :class:`~repro.obs.metrics.MetricsRegistry`) threads
    live telemetry through the engine and all framework channels.
    """
    recorder = recorder or TraceRecorder()
    net = Network(
        f"{blueprint.name}-duplicated", recorder=recorder, metrics=metrics
    )
    log = DetectionLog()
    replicator_ops = OpCounter()
    selector_ops = OpCounter()

    replicator = ReplicatorChannel(
        "replicator",
        capacities=sizing.replicator_capacities,
        divergence_threshold=(
            sizing.replicator_threshold if replicator_divergence else None
        ),
        transfer_latency=blueprint.transfer_latency,
        traces=(
            recorder.channel("replicator.R1"),
            recorder.channel("replicator.R2"),
        ),
        detection_log=log,
        strict_single_fault=strict_single_fault,
        op_cost=replicator_ops.add,
        metrics=metrics,
    )
    selector = SelectorChannel(
        "selector",
        capacities=sizing.selector_capacities,
        divergence_threshold=sizing.selector_threshold,
        transfer_latency=blueprint.transfer_latency,
        trace=recorder.channel("selector.S"),
        detection_log=log,
        strict_single_fault=strict_single_fault,
        verify_duplicates=verify_duplicates,
        op_cost=selector_ops.add,
        priming_tokens=blueprint.priming_tokens(sizing.selector_priming),
        stall_detection=selector_stall_detection,
        metrics=metrics,
    )
    net.add_channel(replicator)
    net.add_channel(selector)

    producer = blueprint.make_producer(net)
    consumer = blueprint.make_consumer(net)
    producer.output = replicator.writer
    consumer.input = selector.reader

    replicas: List[List[Process]] = []
    for replica_index in (0, 1):
        processes = blueprint.make_critical(
            net,
            f"R{replica_index + 1}",
            replica_index,
            replicator.reader(replica_index),
            selector.writer(replica_index),
        )
        replicas.append(processes)

    return DuplicatedNetwork(
        network=net,
        producer=producer,
        consumer=consumer,
        replicator=replicator,
        selector=selector,
        replicas=replicas,
        detection_log=log,
        replicator_ops=replicator_ops,
        selector_ops=selector_ops,
    )
