"""Fault detection bookkeeping shared by the replicator and selector.

Detections are *events*: at some virtual instant a channel concludes from
its occupancy counters alone (no timers, no timestamps — the paper's key
efficiency claim) that one replica has suffered a timing fault.  This
module records those events so experiments can compute detection latencies
against the injection instants.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional


#: Detection mechanisms, named after the paper's Section 3.3 paragraphs.
MECHANISM_OVERFLOW = "overflow"  # replicator: space_k == 0 at a write
MECHANISM_DIVERGENCE = "divergence"  # |space_1 - space_2| exceeds D
MECHANISM_STALL = "stall"  # selector: space_k > |S_k|
MECHANISM_VALUE = "value-mismatch"  # optional fail-silent assumption check


@dataclass(frozen=True)
class FaultReport:
    """One fault-detection event.

    Attributes
    ----------
    time:
        Virtual instant of the detection.
    site:
        ``"replicator"`` or ``"selector"`` — the paper shows both channels
        detect faults independently.
    replica:
        Index of the replica deemed faulty (0-based).
    mechanism:
        One of the ``MECHANISM_*`` constants.
    detail:
        Free-form diagnostic (counter values at detection time).
    """

    time: float
    site: str
    replica: int
    mechanism: str
    detail: str = ""


class DetectionLog:
    """Ordered record of fault detections for one channel (or one run).

    Observers subscribed with :meth:`subscribe` are invoked on every new
    report — the multi-port fault coordinator uses this to quarantine a
    flagged replica on *all* channels, not just the detecting one.
    """

    def __init__(self) -> None:
        self.reports: List[FaultReport] = []
        self._observers: List = []

    def subscribe(self, observer) -> None:
        """Register ``observer(report)`` to be called on each record."""
        self._observers.append(observer)

    def unsubscribe(self, observer) -> None:
        """Remove a previously subscribed observer.

        Removes the first matching registration (observers may be
        subscribed more than once); unknown observers raise
        :class:`ValueError`, surfacing double-unsubscribe bugs early.
        """
        self._observers.remove(observer)

    def record(
        self,
        time: float,
        site: str,
        replica: int,
        mechanism: str,
        detail: str = "",
    ) -> FaultReport:
        """Append and return a new report, then notify observers in
        subscription order.

        A raising observer cannot suppress the others: the report is
        appended before any observer runs, every observer fires exactly
        once, and the first exception (if any) propagates afterwards —
        so a broken coordinator never silently loses detections.
        """
        report = FaultReport(time, site, replica, mechanism, detail)
        self.reports.append(report)
        first_error: Optional[BaseException] = None
        # Snapshot: an observer that (un)subscribes during notification
        # must not change this report's delivery set.
        for observer in tuple(self._observers):
            try:
                observer(report)
            except BaseException as error:  # noqa: BLE001 - re-raised below
                if first_error is None:
                    first_error = error
        if first_error is not None:
            raise first_error
        return report

    def first(
        self,
        site: Optional[str] = None,
        replica: Optional[int] = None,
    ) -> Optional[FaultReport]:
        """Earliest report matching the filters, or ``None``."""
        for report in self.reports:
            if site is not None and report.site != site:
                continue
            if replica is not None and report.replica != replica:
                continue
            return report
        return None

    def __len__(self) -> int:
        return len(self.reports)

    def __iter__(self):
        return iter(self.reports)

    def __bool__(self) -> bool:
        return bool(self.reports)
