"""The paper's primary contribution: fault-tolerant arbitration channels.

* :class:`~repro.core.replicator.ReplicatorChannel` — Section 3.1 rules
  R1-R3 plus the occupancy- and divergence-based fault detection of
  Section 3.3;
* :class:`~repro.core.selector.SelectorChannel` — Section 3.1 rules S1-S3
  plus stall- and divergence-based fault detection;
* :mod:`~repro.core.duplicate` — constructing the reference and duplicated
  process networks of Figure 1 from one application blueprint;
* :mod:`~repro.core.equivalence` — runtime-checkable forms of Lemma 1 and
  Theorem 2;
* :mod:`~repro.core.overhead` — the memory/runtime overhead accounting of
  Table 2.
"""

from repro.core.detection import DetectionLog, FaultReport
from repro.core.replicator import ReplicatorChannel
from repro.core.selector import SelectorChannel
from repro.core.duplicate import (
    DuplicatedNetwork,
    NetworkBlueprint,
    ReferenceNetwork,
    build_duplicated,
    build_reference,
)
from repro.core.equivalence import (
    EquivalenceReport,
    check_equivalence,
    common_prefix_length,
    earlier_is_acceptable,
    output_values_equal,
)
from repro.core.overhead import OverheadModel, OverheadReport
from repro.core.nway import (
    NWayNetwork,
    NWayReplicatorChannel,
    NWaySelectorChannel,
    NWaySizing,
    build_nway,
    size_nway_network,
)
from repro.core.failsilent import LockstepProcess, ValueFaultInjector
from repro.core.ringbuffer import RingBufferReplicator
from repro.core.multiport import (
    FaultCoordinator,
    MultiPortBlueprint,
    MultiPortNetwork,
    MultiPortSizing,
    build_multiport,
    size_multiport_network,
)

__all__ = [
    "RingBufferReplicator",
    "LockstepProcess",
    "ValueFaultInjector",
    "FaultCoordinator",
    "MultiPortBlueprint",
    "MultiPortNetwork",
    "MultiPortSizing",
    "build_multiport",
    "size_multiport_network",
    "NWayNetwork",
    "NWayReplicatorChannel",
    "NWaySelectorChannel",
    "NWaySizing",
    "build_nway",
    "size_nway_network",
    "DetectionLog",
    "FaultReport",
    "ReplicatorChannel",
    "SelectorChannel",
    "DuplicatedNetwork",
    "NetworkBlueprint",
    "ReferenceNetwork",
    "build_duplicated",
    "build_reference",
    "EquivalenceReport",
    "check_equivalence",
    "earlier_is_acceptable",
    "common_prefix_length",
    "output_values_equal",
    "OverheadModel",
    "OverheadReport",
]
