"""Fail-silent process construction: value faults become timing faults.

The paper's fault model rests on the premise that "various techniques
already exist, both at the application level and at the hardware level,
which ensure that all faults are exhibited solely as timing faults"
(Section 1, citing Brasileiro et al.'s application-level fail-silent
nodes and master/checker processors).  This module supplies that
substrate so the repository covers the full chain *value fault ->
self-silencing -> timing fault -> detection by the framework*:

* :class:`LockstepProcess` — executes the transform on two redundant
  lanes (master/checker) and compares results token by token; on the
  first mismatch the process **halts silently** instead of emitting the
  corrupt token.  Downstream, the framework observes exactly a fail-stop
  timing fault and tolerates it;
* :class:`ValueFaultInjector` — schedules a lane corruption at a virtual
  instant (a transient upset of one lane's computation).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import numpy as np

from repro.kpn.channel import ReadEndpoint, WriteEndpoint
from repro.kpn.errors import ProtocolError
from repro.kpn.operations import Delay, Read, Write
from repro.kpn.process import Process
from repro.kpn.simulator import Simulator
from repro.kpn.tokens import Token


def _results_equal(a: Any, b: Any) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(a, b))
    return bool(a == b)


class LockstepProcess(Process):
    """A master/checker pair in one process.

    Both lanes run ``transform`` on every input token; the results are
    compared before anything is emitted.  A corrupted lane (injected via
    :class:`ValueFaultInjector`, or any nondeterminism bug in the
    transform) causes a mismatch, upon which the process silences itself:
    it stops consuming and producing — the fail-silent contract.

    ``service`` is the computation time of one lane in ms (the checker
    lane is modelled as running on parallel hardware, so lockstep adds
    only the comparison overhead, ``compare_ms``).
    """

    def __init__(
        self,
        name: str,
        transform: Callable[[Any], Any],
        service: float = 0.0,
        compare_ms: float = 0.01,
        seed: int = 0,
        out_size: Optional[Callable[[Any], int]] = None,
    ) -> None:
        super().__init__(name)
        self.transform = transform
        self.service = service
        self.compare_ms = compare_ms
        self.seed = seed
        self.out_size = out_size
        self.input: Optional[ReadEndpoint] = None
        self.output: Optional[WriteEndpoint] = None
        self.processed = 0
        self.silenced = False
        self.silenced_at: Optional[float] = None
        #: When set, the checker lane's next result is corrupted once.
        self._corrupt_next = False

    def inject_lane_fault(self) -> None:
        """Corrupt the checker lane's next computation (one transient)."""
        self._corrupt_next = True

    def _checker_result(self, value: Any) -> Any:
        result = self.transform(value)
        if self._corrupt_next:
            self._corrupt_next = False
            return _corrupt(result)
        return result

    def behavior(self):
        if self.input is None or self.output is None:
            raise ProtocolError(f"{self.name}: endpoints not connected")
        while True:
            token = yield Read(self.input)
            if self.service > 0:
                yield Delay(self.service * self.slowdown)
            master = self.transform(token.value)
            checker = self._checker_result(token.value)
            if self.compare_ms > 0:
                yield Delay(self.compare_ms)
            if not _results_equal(master, checker):
                # Fail silent: emit nothing, consume nothing, forever.
                self.silenced = True
                self.silenced_at = self.now
                return
            out = Token(
                value=master,
                seqno=token.seqno,
                stamp=self.now,
                size_bytes=(
                    self.out_size(master) if self.out_size else
                    token.size_bytes
                ),
                origin=self.name,
            )
            yield Write(self.output, out)
            self.processed += 1


def _corrupt(value: Any) -> Any:
    """A deterministic single-upset corruption of a payload."""
    if isinstance(value, np.ndarray):
        corrupted = value.copy()
        flat = corrupted.reshape(-1)
        if flat.size:
            if flat.dtype.kind in "iu":
                flat[0] = flat[0] ^ 1
            else:
                flat[0] = flat[0] + 1.0
        return corrupted
    if isinstance(value, bytes):
        if not value:
            return b"\x01"
        return bytes([value[0] ^ 0x01]) + value[1:]
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        return value ^ 0x1
    if isinstance(value, float):
        return value + 1.0
    if isinstance(value, tuple):
        return (_corrupt(value[0]),) + value[1:] if value else ("?",)
    return ("corrupted", value)


class ValueFaultInjector:
    """Schedules a transient value fault into a lockstep process."""

    def __init__(self, process_name: str, time: float) -> None:
        if time < 0:
            raise ValueError("injection time must be >= 0")
        self.process_name = process_name
        self.time = time
        self.injected_at: Optional[float] = None

    def arm(self, sim: Simulator, network) -> None:
        """Schedule the upset; ``network`` is anything with a
        ``network.process(name)`` lookup (a :class:`~repro.kpn.network.
        Network` or a built duplicated-network wrapper)."""
        container = getattr(network, "network", network)
        process = container.process(self.process_name)
        if not isinstance(process, LockstepProcess):
            raise TypeError(
                f"{self.process_name} is not a LockstepProcess"
            )

        def fire() -> None:
            self.injected_at = sim.now
            process.inject_lane_fault()

        sim.schedule_at(self.time, fire)
