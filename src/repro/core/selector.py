"""The selector channel (Section 3.1, rules S1-S3; detection: Section 3.3).

Two writing interfaces (one per replica), one reading interface (the
consumer ``C``).  A *single* physical FIFO of size ``|S| = max(|S_1|,
|S_2|)`` plus two virtual ``space`` counters:

1. ``fill = 0``, ``space_1 = |S_1|``, ``space_2 = |S_2|`` initially;
2. the read interface destructively and blockingly reads the FIFO; a read
   increments *both* space variables and decrements ``fill``;
3. a write on interface ``k`` blocks if ``space_k == 0``; otherwise, if
   ``space_k <= space_other`` the token is enqueued (``fill += 1``) and
   ``space_k -= 1``; else only ``space_k -= 1`` and the token is dropped —
   it is the late member of a duplicate pair whose early member interface
   ``other`` already queued.

Because ``space_k`` is only ever decremented by interface ``k``'s own
writes (and incremented by consumer reads), back-pressure on one replica is
never caused by the other — Lemma 1 (isolation), checked by the property
tests.

Fault detection (Section 3.3), both purely counter-based:

* **stall**: after a read, ``space_k > |S_k|`` means the consumer has read
  more tokens than replica ``k`` ever wrote — ``k`` would have stalled the
  consumer and is faulty;
* **divergence**: ``|space_1 - space_2| > D`` (with ``D`` from Eq. 5)
  means the replicas' cumulative outputs diverged beyond the fault-free
  bound — the one with *larger* space (fewer writes) is faulty.

After replica ``k`` is flagged, its writes are accepted and discarded
(never blocking the limping replica) and its counters freeze; the healthy
interface continues with plain single-queue semantics.

The optional ``verify_duplicates`` mode additionally checks the paper's
fail-silent assumption at runtime: the late member of each duplicate pair
must carry the same payload as the early member (determinacy, Section 2).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.detection import (
    MECHANISM_DIVERGENCE,
    MECHANISM_STALL,
    MECHANISM_VALUE,
    DetectionLog,
)
from repro.kpn.errors import ProtocolError, SimulationError
from repro.kpn.channel import ReadEndpoint, WriteEndpoint
from repro.kpn.tokens import Token
from repro.kpn.trace import ChannelTrace


def _values_equal(a: Any, b: Any) -> bool:
    """Payload equality that tolerates numpy arrays and nested tuples."""
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(a, b))
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            _values_equal(x, y) for x, y in zip(a, b)
        )
    return bool(a == b)


class SelectorChannel:
    """A selector channel with autonomous timing-fault detection.

    Parameters
    ----------
    name:
        Channel name.
    capacities:
        ``(|S_1|, |S_2|)`` — per-interface virtual queue bounds.
    divergence_threshold:
        Integer ``D`` from Eq. 5; ``None`` disables divergence detection
        (stall detection remains).
    transfer_latency:
        Optional ``f(token) -> ms`` communication latency for enqueued
        tokens.
    trace:
        Optional :class:`ChannelTrace` recording queue events (interface
        recorded per event so per-replica curves can be calibrated).
    detection_log:
        Shared log; fresh one if omitted.
    strict_single_fault:
        Raise if both replicas get flagged (default True).
    verify_duplicates:
        Compare the payloads of duplicate pairs; a mismatch violates the
        fail-silent fault model and is logged (and raised).
    op_cost:
        Optional per-operation cost hook for overhead accounting.
    stall_detection:
        Enable the ``space_k > |S_k|`` mechanism (default).  Ablation
        studies disable it to isolate the divergence mechanism.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        enabled, every committed operation samples the physical fill
        (``chan.<name>.fill``), the virtual ``space_k`` levels
        (``chan.<name>.space_k``), the live divergence
        ``|writes_1 - writes_2|`` (``chan.<name>.divergence`` — the
        Eq. 5 quantity) and, when a threshold is configured, the
        remaining headroom ``D - divergence``
        (``chan.<name>.headroom``).
    """

    def __init__(
        self,
        name: str,
        capacities: Tuple[int, int],
        divergence_threshold: Optional[int] = None,
        transfer_latency: Optional[Callable[[Token], float]] = None,
        trace: Optional[ChannelTrace] = None,
        detection_log: Optional[DetectionLog] = None,
        strict_single_fault: bool = True,
        verify_duplicates: bool = False,
        op_cost: Optional[Callable[[int], None]] = None,
        priming_tokens: Tuple[Token, ...] = (),
        stall_detection: bool = True,
        metrics=None,
    ) -> None:
        if len(capacities) != 2:
            raise ValueError("selector needs exactly two virtual capacities")
        if any(c < 1 for c in capacities):
            raise ValueError("virtual capacities must be >= 1")
        if divergence_threshold is not None and divergence_threshold < 1:
            raise ValueError("divergence threshold must be >= 1")
        if len(priming_tokens) > min(capacities):
            raise ValueError(
                "priming tokens exceed the smaller virtual capacity"
            )
        self.name = name
        self.capacities = tuple(capacities)
        self.threshold = divergence_threshold
        self._latency = transfer_latency
        self.trace = trace
        # Note: `or` would misfire here — an empty DetectionLog is falsy.
        self.log = detection_log if detection_log is not None else DetectionLog()
        self.strict_single_fault = strict_single_fault
        self.verify_duplicates = verify_duplicates
        self.stall_detection = stall_detection
        self._op_cost = op_cost
        self.fifo_size = max(capacities)
        # Priming tokens (Eq. 4 / the "Initial tokens" row of Table 2)
        # pre-fill the physical FIFO and count against both virtual
        # queues, so both virtual fills start equal and the comparison in
        # rule 3 remains a first-of-pair test from the very first token.
        self._queue: Deque[Tuple[float, Token]] = deque(
            (0.0, token) for token in priming_tokens
        )
        self.priming = len(priming_tokens)
        self.fill = self.priming
        self.space = [
            capacities[0] - self.priming,
            capacities[1] - self.priming,
        ]
        if trace is not None and self.priming:
            trace.preset_fill(self.priming)
        self.fault = [False, False]
        self.writes = [0, 0]
        self.drops = [0, 0]
        self.reads = 0
        if metrics is not None and metrics.enabled:
            self._m_fill = metrics.timeseries(f"chan.{name}.fill")
            self._m_space = (
                metrics.timeseries(f"chan.{name}.space_1"),
                metrics.timeseries(f"chan.{name}.space_2"),
            )
            self._m_div = metrics.timeseries(f"chan.{name}.divergence")
            self._m_headroom = (
                metrics.timeseries(f"chan.{name}.headroom")
                if self.threshold is not None
                else None
            )
            if self.priming:
                self._m_fill.append(0.0, self.fill)
        else:
            self._m_fill = None
            self._m_space = None
            self._m_div = None
            self._m_headroom = None
        self._pending_values: Dict[int, Any] = {}
        #: Interface under post-countermeasure handover (see
        #: :meth:`begin_recovery`); ``_handover`` is the number of solo
        #: writes the healthy interface owes before pairing resumes.
        self._recovering: Optional[int] = None
        self._handover = 0
        self._on_recovered: Optional[Callable[[float], None]] = None
        self._sim = None
        self._parked_reader: Deque = deque()
        self._parked_writers: Tuple[Deque, Deque] = (deque(), deque())

    # -- wiring -------------------------------------------------------------

    def bind(self, sim) -> None:
        """Attach the simulator used to wake parked processes."""
        self._sim = sim

    def writer(self, replica: int) -> WriteEndpoint:
        """The write endpoint of replica ``replica`` (0 or 1)."""
        if replica not in (0, 1):
            raise ValueError("replica index must be 0 or 1")
        return WriteEndpoint(self, replica)

    @property
    def reader(self) -> ReadEndpoint:
        """The consumer-facing read endpoint."""
        return ReadEndpoint(self, 0)

    @property
    def any_fault(self) -> bool:
        """True once any replica has been flagged."""
        return any(self.fault)

    # -- detection helpers ------------------------------------------------

    def _charge(self, operations: int) -> None:
        if self._op_cost is not None:
            self._op_cost(operations)

    def _sample(self, now: float) -> None:
        """Record fill, spaces, divergence and headroom (cold path)."""
        self._m_fill.append(now, self.fill)
        self._m_space[0].append(now, self.space[0])
        self._m_space[1].append(now, self.space[1])
        gap = abs(self.writes[0] - self.writes[1])
        self._m_div.append(now, gap)
        if self._m_headroom is not None:
            self._m_headroom.append(now, self.threshold - gap)

    def _flag(self, replica: int, mechanism: str, now: float, detail: str) -> None:
        if self.fault[replica]:
            return
        self.fault[replica] = True
        self.log.record(now, "selector", replica, mechanism, detail)
        self._pending_values.clear()
        if self.strict_single_fault and all(self.fault):
            raise SimulationError(
                f"{self.name}: both replicas flagged faulty — single-fault "
                "assumption violated (or capacities/threshold under-sized)"
            )
        # The healthy interface may have been parked behind a space_k == 0
        # that a future read will clear; nothing else to do here.

    def quarantine(self, replica: int) -> None:
        """Mark a replica faulty without recording a detection.

        Multi-port coordination: another channel of the same replica
        detected the fault; this selector stops honouring the interface
        (writes are discarded, counters freeze) and releases any writer
        parked on it so the limping replica can never deadlock.
        """
        if not self.fault[replica]:
            self.fault[replica] = True
            self._pending_values.clear()
            self._wake(self._parked_writers[replica])

    # -- recovery -----------------------------------------------------------

    def begin_recovery(
        self,
        replica: int,
        handover: int,
        now: float,
        on_complete: Optional[Callable[[float], None]] = None,
    ) -> None:
        """Start the post-countermeasure handover on interface ``replica``.

        ``handover`` is the producer's write count at countermeasure
        time: every token up to it must be delivered by the *healthy*
        interface solo — the respawned generation never saw them, and
        the physical FIFO is order-preserving, so the recovered
        interface may not enqueue before the healthy one has caught up.
        The quarantined interface keeps discarding writes meanwhile;
        each discard extends the obligation by one (that token's pair
        member was just thrown away).  The healthy write that fulfils
        the obligation completes recovery: ``writes`` of the recovered
        interface snaps to the healthy count, ``space`` is re-primed
        from the channel invariant ``space_k = |S_k| - priming -
        writes_k + reads``, the fault flag clears, and normal S1-S3
        pairing resumes with the very next token.
        """
        if replica not in (0, 1):
            raise ValueError("replica index must be 0 or 1")
        if self._recovering is not None:
            raise SimulationError(
                f"{self.name}: recovery already in progress on interface "
                f"{self._recovering + 1}"
            )
        if handover < 0:
            raise ValueError("handover must be >= 0")
        if not self.fault[replica]:
            self.fault[replica] = True
            self._pending_values.clear()
        self._recovering = replica
        self._handover = handover
        self._on_recovered = on_complete
        self._maybe_complete_recovery(now)
        # Never let the respawned writer deadlock behind a stale park
        # (killed handles are ignored by the retry machinery).
        self._wake(self._parked_writers[replica])

    def _maybe_complete_recovery(self, now: float) -> None:
        recovering = self._recovering
        healthy = 1 - recovering
        if self.writes[healthy] < self._handover:
            return
        self.writes[recovering] = self.writes[healthy]
        self.space[recovering] = max(
            0,
            self.capacities[recovering] - self.priming
            - self.writes[recovering] + self.reads,
        )
        self.fault[recovering] = False
        self._recovering = None
        self._handover = 0
        if self._m_fill is not None:
            self._sample(now)
        callback = self._on_recovered
        self._on_recovered = None
        if callback is not None:
            callback(now)

    def _check_divergence(self, now: float) -> None:
        # The quantity Eq. 5 bounds is the difference in the total number
        # of tokens received over the two interfaces.  For equal virtual
        # capacities it equals the paper's |space_1 - space_2|; tracking
        # the write counters directly keeps it correct for unequal
        # capacities too (|S_1| != |S_2| would otherwise bias the space
        # difference by the constant |S_1| - |S_2|).
        if self.threshold is None or self.any_fault:
            return
        gap = self.writes[0] - self.writes[1]
        if gap > self.threshold:
            self._flag(
                1,
                MECHANISM_DIVERGENCE,
                now,
                f"writes={self.writes[0]}/{self.writes[1]} D={self.threshold}",
            )
        elif -gap > self.threshold:
            self._flag(
                0,
                MECHANISM_DIVERGENCE,
                now,
                f"writes={self.writes[0]}/{self.writes[1]} D={self.threshold}",
            )

    def _check_stall(self, now: float) -> None:
        if not self.stall_detection:
            return
        for k in (0, 1):
            if not self.fault[k] and self.space[k] > self.capacities[k]:
                self._flag(
                    k,
                    MECHANISM_STALL,
                    now,
                    f"space_{k + 1}={self.space[k]} > |S_{k + 1}|="
                    f"{self.capacities[k]}",
                )

    def _verify_pair(self, seqno: int, late_value: Any, now: float,
                     late_interface: int) -> None:
        if not self.verify_duplicates:
            return
        early_value = self._pending_values.pop(seqno, None)
        if early_value is None:
            return
        if not _values_equal(early_value, late_value):
            self.log.record(
                now,
                "selector",
                late_interface,
                MECHANISM_VALUE,
                f"payload mismatch at seq {seqno}",
            )
            raise SimulationError(
                f"{self.name}: duplicate pair {seqno} differs in value — "
                "the network is not fail-silent/determinate"
            )

    # -- channel protocol (engine-facing) -----------------------------------

    def poll_read(self, index: int, now: float):
        if index != 0:
            raise ProtocolError(f"{self.name}: bad read interface {index}")
        self._charge(3)  # fill decrement + two space increments
        if not self._queue:
            return ("empty", None)
        ready, token = self._queue[0]
        if ready > now + 1e-12:
            return ("wait", ready)
        self._queue.popleft()
        self.fill -= 1
        self.reads += 1
        for k in (0, 1):
            if not self.fault[k]:
                self.space[k] += 1
        if self.trace is not None:
            self.trace.on_read(now, token.seqno)
        if self._m_fill is not None:
            self._sample(now)
        self._check_stall(now)
        self._check_divergence(now)
        for k in (0, 1):
            self._wake(self._parked_writers[k])
        return ("ok", token)

    def poll_write(self, index: int, token: Token, now: float):
        if index not in (0, 1):
            raise ProtocolError(f"{self.name}: bad write interface {index}")
        self._charge(3)  # space compare + space decrement + fill update
        if self.fault[index]:
            # Isolation after detection: accept and discard, never block.
            self.drops[index] += 1
            if self.trace is not None:
                self.trace.on_drop(now, token.seqno, index)
            if self._recovering == index:
                # The respawned generation raced ahead of the healthy
                # backlog; its copy of this token is gone, so the
                # healthy interface now owes one more solo delivery.
                self._handover += 1
            return ("ok", None)
        if self.space[index] == 0:
            return ("full", None)
        other = 1 - index
        # Enqueue iff this interface provides the *first* token of the
        # current duplicate pair.  The first-of-pair writer has a virtual
        # fill (|S_k| - space_k) at least as large as the other interface's;
        # the late writer's is strictly smaller.  For |S_1| == |S_2| this is
        # exactly the paper's rule "enqueue iff space_k <= space_other";
        # with unequal capacities the fill comparison removes the constant
        # capacity bias.
        fill_self = self.capacities[index] - self.space[index]
        fill_other = self.capacities[other] - self.space[other]
        enqueue = self.fault[other] or fill_self >= fill_other
        self.space[index] -= 1
        self.writes[index] += 1
        if enqueue:
            if self.fill >= self.fifo_size:
                raise SimulationError(
                    f"{self.name}: physical FIFO overflow (fill={self.fill},"
                    f" |S|={self.fifo_size}) — sizing violated"
                )
            delay = self._latency(token) if self._latency is not None else 0.0
            self._queue.append((now + delay, token))
            self.fill += 1
            if self.trace is not None:
                self.trace.on_write(now, token.seqno, index)
            if self.verify_duplicates and not self.any_fault:
                self._pending_values[token.seqno] = token.value
            self._wake(self._parked_reader)
        else:
            self.drops[index] += 1
            if self.trace is not None:
                self.trace.on_drop(now, token.seqno, index)
            self._verify_pair(token.seqno, token.value, now, index)
        if self._recovering is not None and index != self._recovering:
            self._maybe_complete_recovery(now)
        if self._m_fill is not None:
            self._sample(now)
        self._check_divergence(now)
        return ("ok", None)

    def park_reader(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_reader.append(handle)

    def park_writer(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_writers[index].append(handle)

    # -- internals ------------------------------------------------------------

    def _wake(self, parked: Deque) -> None:
        # FIFO wake order (see Fifo._wake): deterministic retry sequence.
        sim = self._sim
        while parked:
            handle = parked.popleft()
            handle.is_parked = False
            if sim is not None:
                sim.retry(handle)

    def __repr__(self) -> str:
        return (
            f"SelectorChannel({self.name}, fill={self.fill}, "
            f"space={self.space}, fault={self.fault})"
        )
