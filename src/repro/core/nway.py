"""n-replica generalisation of the replicator and selector channels.

The paper restricts its presentation to two replicas and one tolerated
fault, noting that "a more general setup for tolerating up to n timing
faults can be easily constructed using the principles outlined in this
paper" (Section 1).  This module constructs it:

* :class:`NWayReplicatorChannel` — one writing interface, ``n`` queues;
  a write duplicates the token into every non-faulty queue and blocks
  only if *all* non-faulty queues are full (which, with Eq. 3 sizing,
  means more faults than replicas);
* :class:`NWaySelectorChannel` — ``n`` writing interfaces, one FIFO; the
  *first* token of each n-plicate group is enqueued (virtual-fill
  comparison against the maximum over healthy interfaces — the same rule
  that reduces to the paper's ``space_1 <= space_2`` for ``n = 2``), the
  stragglers dropped;
* :func:`size_nway_network` — Section 3.4 generalised: per-replica
  Eq. 3/Eq. 4 capacities, the Eq. 5 threshold over all ordered replica
  pairs, and the Eq. 7/8 detection bounds where the surviving replica is
  the *slowest* healthy one;
* :func:`build_nway` — assembly of the n-replicated network from the
  same :class:`~repro.core.duplicate.NetworkBlueprint` used for Fig. 1.

With ``n`` replicas the construction tolerates ``n - 1`` permanent
timing faults: every detection isolates one replica, and the channels
keep operating on the survivors down to a single healthy replica.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Callable, Deque, List, Optional, Sequence, Tuple

from repro.core.detection import (
    MECHANISM_DIVERGENCE,
    MECHANISM_OVERFLOW,
    MECHANISM_STALL,
    DetectionLog,
)
from repro.core.duplicate import NetworkBlueprint
from repro.kpn.errors import ProtocolError, SimulationError
from repro.kpn.channel import ReadEndpoint, WriteEndpoint
from repro.kpn.network import Network
from repro.kpn.process import Process
from repro.kpn.tokens import Token
from repro.kpn.trace import TraceRecorder
from repro.rtc.pjd import PJD
from repro.rtc.sizing import (
    detection_latency_bound_fail_stop,
    divergence_threshold,
    fifo_capacity,
    initial_fill,
)


class NWayReplicatorChannel:
    """A replicator with ``n`` reading interfaces (one per replica)."""

    def __init__(
        self,
        name: str,
        capacities: Sequence[int],
        divergence_threshold: Optional[int] = None,
        transfer_latency: Optional[Callable[[Token], float]] = None,
        detection_log: Optional[DetectionLog] = None,
        traces=None,
        op_cost: Optional[Callable[[int], None]] = None,
    ) -> None:
        if len(capacities) < 2:
            raise ValueError("need at least two replicas")
        if any(c < 1 for c in capacities):
            raise ValueError("queue capacities must be >= 1")
        self.name = name
        self.capacities = tuple(capacities)
        self.n = len(capacities)
        self.threshold = divergence_threshold
        self._latency = transfer_latency
        self.log = detection_log if detection_log is not None else DetectionLog()
        self.traces = traces
        self._op_cost = op_cost
        self._queues = [deque() for _ in range(self.n)]
        self.fault = [False] * self.n
        self.reads = [0] * self.n
        self.writes = 0
        self._sim = None
        self._parked_readers: List[Deque] = [deque() for _ in range(self.n)]
        self._parked_writers: Deque = deque()

    def bind(self, sim) -> None:
        self._sim = sim

    @property
    def writer(self) -> WriteEndpoint:
        return WriteEndpoint(self, 0)

    def reader(self, replica: int) -> ReadEndpoint:
        if not 0 <= replica < self.n:
            raise ValueError(f"replica index out of range: {replica}")
        return ReadEndpoint(self, replica)

    def fill(self, replica: int) -> int:
        return len(self._queues[replica])

    def space(self, replica: int) -> int:
        return self.capacities[replica] - len(self._queues[replica])

    @property
    def healthy(self) -> List[int]:
        """Indices of replicas not (yet) flagged."""
        return [k for k in range(self.n) if not self.fault[k]]

    def _charge(self, operations: int) -> None:
        if self._op_cost is not None:
            self._op_cost(operations)

    def _flag(self, replica: int, mechanism: str, now: float,
              detail: str) -> None:
        if self.fault[replica]:
            return
        self.fault[replica] = True
        self.log.record(now, "replicator", replica, mechanism, detail)
        if all(self.fault):
            raise SimulationError(
                f"{self.name}: all {self.n} replicas flagged faulty"
            )

    def _check_divergence(self, now: float) -> None:
        if self.threshold is None:
            return
        healthy = self.healthy
        if len(healthy) < 2:
            return
        front = max(self.reads[k] for k in healthy)
        for k in healthy:
            if front - self.reads[k] > self.threshold:
                self._flag(
                    k,
                    MECHANISM_DIVERGENCE,
                    now,
                    f"reads {self.reads[k]} lags front {front} "
                    f"(D={self.threshold})",
                )

    # -- channel protocol -----------------------------------------------------

    def poll_read(self, index: int, now: float):
        queue = self._queues[index]
        self._charge(1)
        if not queue:
            return ("empty", None)
        ready, token = queue[0]
        if ready > now + 1e-12:
            return ("wait", ready)
        queue.popleft()
        self.reads[index] += 1
        if self.traces is not None:
            self.traces[index].on_read(now, token.seqno, index)
        self._check_divergence(now)
        self._wake(self._parked_writers)
        return ("ok", token)

    def poll_write(self, index: int, token: Token, now: float):
        if index != 0:
            raise ProtocolError(f"{self.name}: bad write interface {index}")
        self._charge(1 + self.n)
        for k in self.healthy:
            if self.space(k) == 0:
                self._flag(
                    k,
                    MECHANISM_OVERFLOW,
                    now,
                    f"space_{k + 1}=0 at write of seq {token.seqno}",
                )
        targets = self.healthy
        delay = self._latency(token) if self._latency is not None else 0.0
        for k in targets:
            self._queues[k].append((now + delay, token))
            if self.traces is not None:
                self.traces[k].on_write(now, token.seqno, k)
        self.writes += 1
        for k in targets:
            self._wake(self._parked_readers[k])
        return ("ok", None)

    def park_reader(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_readers[index].append(handle)

    def park_writer(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_writers.append(handle)

    def _wake(self, parked: Deque) -> None:
        # FIFO wake order (see Fifo._wake): deterministic retry sequence.
        sim = self._sim
        while parked:
            handle = parked.popleft()
            handle.is_parked = False
            if sim is not None:
                sim.retry(handle)


class NWaySelectorChannel:
    """A selector with ``n`` writing interfaces."""

    def __init__(
        self,
        name: str,
        capacities: Sequence[int],
        divergence_threshold: Optional[int] = None,
        transfer_latency: Optional[Callable[[Token], float]] = None,
        detection_log: Optional[DetectionLog] = None,
        trace=None,
        priming_tokens: Tuple[Token, ...] = (),
        op_cost: Optional[Callable[[int], None]] = None,
    ) -> None:
        if len(capacities) < 2:
            raise ValueError("need at least two replicas")
        if any(c < 1 for c in capacities):
            raise ValueError("virtual capacities must be >= 1")
        if len(priming_tokens) > min(capacities):
            raise ValueError("priming exceeds the smallest capacity")
        self.name = name
        self.capacities = tuple(capacities)
        self.n = len(capacities)
        self.threshold = divergence_threshold
        self._latency = transfer_latency
        self.log = detection_log if detection_log is not None else DetectionLog()
        self.trace = trace
        self._op_cost = op_cost
        self.fifo_size = max(capacities)
        self._queue = deque((0.0, token) for token in priming_tokens)
        self.priming = len(priming_tokens)
        self.fill = self.priming
        self.space = [c - self.priming for c in capacities]
        self.fault = [False] * self.n
        self.writes = [0] * self.n
        self.drops = [0] * self.n
        self.reads = 0
        self._sim = None
        self._parked_reader: Deque = deque()
        self._parked_writers: List[Deque] = [deque() for _ in range(self.n)]
        if trace is not None and self.priming:
            trace.preset_fill(self.priming)

    def bind(self, sim) -> None:
        self._sim = sim

    def writer(self, replica: int) -> WriteEndpoint:
        if not 0 <= replica < self.n:
            raise ValueError(f"replica index out of range: {replica}")
        return WriteEndpoint(self, replica)

    @property
    def reader(self) -> ReadEndpoint:
        return ReadEndpoint(self, 0)

    @property
    def healthy(self) -> List[int]:
        return [k for k in range(self.n) if not self.fault[k]]

    def virtual_fill(self, replica: int) -> int:
        return self.capacities[replica] - self.space[replica]

    def _charge(self, operations: int) -> None:
        if self._op_cost is not None:
            self._op_cost(operations)

    def _flag(self, replica: int, mechanism: str, now: float,
              detail: str) -> None:
        if self.fault[replica]:
            return
        self.fault[replica] = True
        self.log.record(now, "selector", replica, mechanism, detail)
        if all(self.fault):
            raise SimulationError(
                f"{self.name}: all {self.n} replicas flagged faulty"
            )

    def _check_divergence(self, now: float) -> None:
        if self.threshold is None:
            return
        healthy = self.healthy
        if len(healthy) < 2:
            return
        front = max(self.writes[k] for k in healthy)
        for k in healthy:
            if front - self.writes[k] > self.threshold:
                self._flag(
                    k,
                    MECHANISM_DIVERGENCE,
                    now,
                    f"writes {self.writes[k]} lags front {front} "
                    f"(D={self.threshold})",
                )

    def _check_stall(self, now: float) -> None:
        for k in self.healthy:
            if self.space[k] > self.capacities[k]:
                self._flag(
                    k,
                    MECHANISM_STALL,
                    now,
                    f"space_{k + 1}={self.space[k]} > "
                    f"|S_{k + 1}|={self.capacities[k]}",
                )

    # -- channel protocol -----------------------------------------------------

    def poll_read(self, index: int, now: float):
        if index != 0:
            raise ProtocolError(f"{self.name}: bad read interface {index}")
        self._charge(1 + self.n)
        if not self._queue:
            return ("empty", None)
        ready, token = self._queue[0]
        if ready > now + 1e-12:
            return ("wait", ready)
        self._queue.popleft()
        self.fill -= 1
        self.reads += 1
        for k in self.healthy:
            self.space[k] += 1
        if self.trace is not None:
            self.trace.on_read(now, token.seqno)
        self._check_stall(now)
        self._check_divergence(now)
        for parked in self._parked_writers:
            self._wake(parked)
        return ("ok", token)

    def poll_write(self, index: int, token: Token, now: float):
        if not 0 <= index < self.n:
            raise ProtocolError(f"{self.name}: bad write interface {index}")
        self._charge(1 + self.n)
        if self.fault[index]:
            self.drops[index] += 1
            if self.trace is not None:
                self.trace.on_drop(now, token.seqno, index)
            return ("ok", None)
        if self.space[index] == 0:
            return ("full", None)
        others = [k for k in self.healthy if k != index]
        own_fill = self.virtual_fill(index)
        front_fill = max(
            (self.virtual_fill(k) for k in others), default=own_fill
        )
        enqueue = own_fill >= front_fill
        self.space[index] -= 1
        self.writes[index] += 1
        if enqueue:
            if self.fill >= self.fifo_size:
                raise SimulationError(
                    f"{self.name}: physical FIFO overflow — sizing violated"
                )
            delay = self._latency(token) if self._latency is not None else 0.0
            self._queue.append((now + delay, token))
            self.fill += 1
            if self.trace is not None:
                self.trace.on_write(now, token.seqno, index)
            self._wake(self._parked_reader)
        else:
            self.drops[index] += 1
            if self.trace is not None:
                self.trace.on_drop(now, token.seqno, index)
        self._check_divergence(now)
        return ("ok", None)

    def park_reader(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_reader.append(handle)

    def park_writer(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_writers[index].append(handle)

    def _wake(self, parked: Deque) -> None:
        # FIFO wake order (see Fifo._wake): deterministic retry sequence.
        sim = self._sim
        while parked:
            handle = parked.popleft()
            handle.is_parked = False
            if sim is not None:
                sim.retry(handle)


@dataclass
class NWaySizing:
    """Section 3.4 generalised to ``n`` replicas."""

    replicator_capacities: Tuple[int, ...]
    selector_capacities: Tuple[int, ...]
    selector_initial_fill: Tuple[int, ...]
    selector_threshold: int
    replicator_threshold: int
    selector_detection_bound: float
    replicator_detection_bound: float

    @property
    def n(self) -> int:
        return len(self.replicator_capacities)

    @property
    def selector_priming(self) -> int:
        return max(self.selector_initial_fill)

    @property
    def selector_fifo_size(self) -> int:
        return max(self.selector_capacities)


def size_nway_network(
    producer: PJD,
    replica_inputs: Sequence[PJD],
    replica_outputs: Sequence[PJD],
    consumer: PJD,
    horizon: Optional[float] = None,
) -> NWaySizing:
    """Run the generalised Section 3.4 computation for ``n`` replicas."""
    if len(replica_inputs) != len(replica_outputs):
        raise ValueError("replica input/output model counts differ")
    if len(replica_inputs) < 2:
        raise ValueError("need at least two replicas")
    producer_upper, _ = producer.curves()
    consumer_upper, consumer_lower = consumer.curves()

    replicator_caps = tuple(
        fifo_capacity(producer_upper, model.lower(), horizon)
        for model in replica_inputs
    )
    fills = tuple(
        initial_fill(consumer_upper, model.lower(), horizon)
        for model in replica_outputs
    )
    priming = max(fills)
    selector_caps = tuple(
        priming + fifo_capacity(model.upper(), consumer_lower, horizon)
        for model in replica_outputs
    )
    selector_d = divergence_threshold(
        [m.upper() for m in replica_outputs],
        [m.lower() for m in replica_outputs],
        horizon,
    )
    replicator_d = divergence_threshold(
        [m.upper() for m in replica_inputs],
        [m.lower() for m in replica_inputs],
        horizon,
    )
    selector_bound = detection_latency_bound_fail_stop(
        [m.lower() for m in replica_outputs], selector_d, horizon
    )
    replicator_bound = detection_latency_bound_fail_stop(
        [m.lower() for m in replica_inputs], replicator_d, horizon
    )
    return NWaySizing(
        replicator_capacities=replicator_caps,
        selector_capacities=selector_caps,
        selector_initial_fill=fills,
        selector_threshold=selector_d,
        replicator_threshold=replicator_d,
        selector_detection_bound=selector_bound,
        replicator_detection_bound=replicator_bound,
    )


@dataclass
class NWayNetwork:
    """The assembled n-replicated network."""

    network: Network
    producer: Process
    consumer: Process
    replicator: NWayReplicatorChannel
    selector: NWaySelectorChannel
    replicas: List[List[Process]]
    detection_log: DetectionLog

    def replica_process_names(self, replica: int) -> List[str]:
        return [p.name for p in self.replicas[replica]]

    def run(self, until: Optional[float] = None,
            max_events: Optional[int] = None):
        sim = self.network.instantiate()
        stats = sim.run(until=until, max_events=max_events)
        return sim, stats


def build_nway(
    blueprint: NetworkBlueprint,
    sizing: NWaySizing,
    recorder: Optional[TraceRecorder] = None,
) -> NWayNetwork:
    """Assemble the n-replicated network from a standard blueprint.

    ``blueprint.make_critical`` is invoked once per replica with variant
    indices ``0 .. n-1`` — applications provide design diversity for as
    many variants as the sizing has replicas.
    """
    recorder = recorder or TraceRecorder()
    net = Network(f"{blueprint.name}-{sizing.n}way", recorder=recorder)
    log = DetectionLog()

    replicator = NWayReplicatorChannel(
        "replicator",
        capacities=sizing.replicator_capacities,
        divergence_threshold=sizing.replicator_threshold,
        transfer_latency=blueprint.transfer_latency,
        detection_log=log,
        traces=[
            recorder.channel(f"replicator.R{k + 1}")
            for k in range(sizing.n)
        ],
    )
    selector = NWaySelectorChannel(
        "selector",
        capacities=sizing.selector_capacities,
        divergence_threshold=sizing.selector_threshold,
        transfer_latency=blueprint.transfer_latency,
        detection_log=log,
        trace=recorder.channel("selector.S"),
        priming_tokens=blueprint.priming_tokens(sizing.selector_priming),
    )
    net.add_channel(replicator)
    net.add_channel(selector)

    producer = blueprint.make_producer(net)
    consumer = blueprint.make_consumer(net)
    producer.output = replicator.writer
    consumer.input = selector.reader

    replicas: List[List[Process]] = []
    for k in range(sizing.n):
        processes = blueprint.make_critical(
            net, f"R{k + 1}", k, replicator.reader(k), selector.writer(k)
        )
        replicas.append(processes)

    return NWayNetwork(
        network=net,
        producer=producer,
        consumer=consumer,
        replicator=replicator,
        selector=selector,
        replicas=replicas,
        detection_log=log,
    )
