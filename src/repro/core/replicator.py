"""The replicator channel (Section 3.1, rules R1-R3; detection: Section 3.3).

One writing interface (the producer ``P``), two reading interfaces (the
replicas ``R_1`` and ``R_2``).  Internally two FIFO queues of capacities
``|R_1|`` and ``|R_2|``:

1. each queue has ``fill_k`` / ``space_k`` variables, initially
   ``fill_k = 0``, ``space_k = |R_k|``;
2. each reading interface destructively and blockingly reads its own queue;
3. a write enqueues the token into *both* queues if
   ``min(space_1, space_2) > 0``, else it blocks.

Fault detection (Section 3.3) replaces the blocking in rule 3: the queues
were sized by Eq. 3 so that a healthy replica never lets its queue fill up;
finding ``space_k == 0`` at a write instant therefore *is* the detection of
a timing fault in replica ``k`` (``fault_k := TRUE``), after which the
replicator stops inserting tokens into that queue — this is what prevents
the deadlock of the motivational example (Section 1.1): the producer can
no longer block on the faulty side, so the healthy replica keeps running.

A second, "analogous" mechanism (the paper's threshold computation for the
replicator channel) monitors the divergence of the replicas' *consumption*
counts: if ``reads_i - reads_j > D`` then replica ``j`` is consuming too
slowly and is flagged faulty.  Pass ``divergence_threshold=None`` to
disable it and reproduce the occupancy-only variant.

No wall-clock or virtual-time values are read by any detection rule —
detection is purely counter-based, the paper's "no runtime time-keeping".
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.core.detection import (
    MECHANISM_DIVERGENCE,
    MECHANISM_OVERFLOW,
    DetectionLog,
)
from repro.kpn.errors import ProtocolError, SimulationError
from repro.kpn.channel import ReadEndpoint, WriteEndpoint
from repro.kpn.tokens import Token
from repro.kpn.trace import ChannelTrace


class ReplicatorChannel:
    """A replicator channel with autonomous timing-fault detection.

    Parameters
    ----------
    name:
        Channel name.
    capacities:
        ``(|R_1|, |R_2|)`` from Eq. 3.
    divergence_threshold:
        Optional integer ``D`` for consumption-divergence detection
        (Eq. 5 computed on the replica input curves); ``None`` disables.
    transfer_latency:
        Optional ``f(token) -> ms`` communication latency (SCC model).
    traces:
        Optional pair of :class:`ChannelTrace` (one per queue).
    detection_log:
        Shared :class:`DetectionLog`; a fresh one is created if omitted.
    strict_single_fault:
        When True (default), flagging *both* replicas faulty raises
        :class:`SimulationError` — the paper's fault model admits at most
        one permanent timing fault.
    op_cost:
        Optional callable invoked once per channel operation with the
        number of primitive counter updates performed; feeds the runtime
        overhead accounting of Table 2.
    metrics:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; when
        enabled, every committed operation samples the live ``space_k``
        levels (``chan.<name>.space_k``) and the consumption divergence
        ``|reads_1 - reads_2|`` (``chan.<name>.divergence``) — the
        quantity the Eq. 5 threshold ``D`` bounds at this channel.
    """

    def __init__(
        self,
        name: str,
        capacities: Tuple[int, int],
        divergence_threshold: Optional[int] = None,
        transfer_latency: Optional[Callable[[Token], float]] = None,
        traces: Optional[Tuple[ChannelTrace, ChannelTrace]] = None,
        detection_log: Optional[DetectionLog] = None,
        strict_single_fault: bool = True,
        op_cost: Optional[Callable[[int], None]] = None,
        metrics=None,
    ) -> None:
        if len(capacities) != 2:
            raise ValueError("replicator needs exactly two queue capacities")
        if any(c < 1 for c in capacities):
            raise ValueError("queue capacities must be >= 1")
        if divergence_threshold is not None and divergence_threshold < 1:
            raise ValueError("divergence threshold must be >= 1")
        self.name = name
        self.capacities = tuple(capacities)
        self.threshold = divergence_threshold
        self._latency = transfer_latency
        self.traces = traces
        # Note: `or` would misfire here — an empty DetectionLog is falsy.
        self.log = detection_log if detection_log is not None else DetectionLog()
        self.strict_single_fault = strict_single_fault
        self._op_cost = op_cost
        if metrics is not None and metrics.enabled:
            self._m_space = (
                metrics.timeseries(f"chan.{name}.space_1"),
                metrics.timeseries(f"chan.{name}.space_2"),
            )
            self._m_div = metrics.timeseries(f"chan.{name}.divergence")
        else:
            self._m_space = None
            self._m_div = None
        self._queues: Tuple[Deque, Deque] = (deque(), deque())
        self.fault = [False, False]
        self.reads = [0, 0]
        self.writes = 0
        #: Interface under post-countermeasure catch-up (see
        #: :meth:`reprime`); consumption-divergence detection is muted
        #: until the healthy replica's read counter catches back up.
        self._recovering: Optional[int] = None
        self._sim = None
        self._parked_readers: Tuple[Deque, Deque] = (deque(), deque())
        self._parked_writers: Deque = deque()

    # -- wiring -------------------------------------------------------------

    def bind(self, sim) -> None:
        """Attach the simulator used to wake parked processes."""
        self._sim = sim

    @property
    def writer(self) -> WriteEndpoint:
        """The producer-facing write endpoint."""
        return WriteEndpoint(self, 0)

    def reader(self, replica: int) -> ReadEndpoint:
        """The read endpoint of replica ``replica`` (0 or 1)."""
        if replica not in (0, 1):
            raise ValueError("replica index must be 0 or 1")
        return ReadEndpoint(self, replica)

    # -- state --------------------------------------------------------------

    def fill(self, replica: int) -> int:
        """``fill_k`` — tokens currently queued for replica ``replica``."""
        return len(self._queues[replica])

    def space(self, replica: int) -> int:
        """``space_k`` — free capacity of queue ``replica``."""
        return self.capacities[replica] - len(self._queues[replica])

    @property
    def any_fault(self) -> bool:
        """True once any replica has been flagged."""
        return any(self.fault)

    # -- detection helpers ------------------------------------------------

    def _charge(self, operations: int) -> None:
        if self._op_cost is not None:
            self._op_cost(operations)

    def _sample(self, now: float) -> None:
        """Record the live occupancy and divergence signals (cold path)."""
        self._m_space[0].append(now, self.space(0))
        self._m_space[1].append(now, self.space(1))
        self._m_div.append(now, abs(self.reads[0] - self.reads[1]))

    def _flag(self, replica: int, mechanism: str, now: float, detail: str) -> None:
        if self.fault[replica]:
            return
        self.fault[replica] = True
        self.log.record(now, "replicator", replica, mechanism, detail)
        if self.strict_single_fault and all(self.fault):
            raise SimulationError(
                f"{self.name}: both replicas flagged faulty — single-fault "
                "assumption violated (or FIFO capacities under-sized)"
            )
        # The faulty queue will never be written again; a parked reader on
        # it would wait forever, which models the faulty replica stalling.

    def quarantine(self, replica: int) -> None:
        """Mark a replica faulty without recording a detection.

        Used by the multi-port fault coordinator when *another* channel
        of the same replica detected the fault: the replica is condemned
        as a whole (Section 2's fault model is per replica, not per
        channel), so this channel stops serving it too.
        """
        if not self.fault[replica]:
            self.fault[replica] = True

    # -- recovery -----------------------------------------------------------

    def reprime(self, replica: int) -> int:
        """Re-prime interface ``replica`` for a respawned generation.

        The stale queue is flushed (its tokens were meant for the dead
        generation), the read counter fast-forwards to the producer's
        write counter — the respawned replica starts exactly at the live
        input frontier — and the fault flag clears so rule R3 enqueues
        into this queue again.  The consumption-divergence check is
        muted until the *healthy* replica's read counter has caught back
        up to the recovered one's (the fast-forward put the recovered
        counter ahead by the healthy backlog; that offset is transient
        bookkeeping, not divergence).  Occupancy-based detection stays
        armed throughout — a failed respawn fills the queue and is
        re-detected.  Returns the number of flushed tokens.
        """
        if replica not in (0, 1):
            raise ValueError("replica index must be 0 or 1")
        flushed = len(self._queues[replica])
        self._queues[replica].clear()
        self.reads[replica] = self.writes
        self.fault[replica] = False
        self._recovering = replica
        return flushed

    def _check_divergence(self, now: float) -> None:
        if (self.threshold is None or self.any_fault
                or self._recovering is not None):
            return
        gap = self.reads[0] - self.reads[1]
        if gap > self.threshold:
            self._flag(
                1,
                MECHANISM_DIVERGENCE,
                now,
                f"reads={self.reads[0]}/{self.reads[1]} D={self.threshold}",
            )
        elif -gap > self.threshold:
            self._flag(
                0,
                MECHANISM_DIVERGENCE,
                now,
                f"reads={self.reads[0]}/{self.reads[1]} D={self.threshold}",
            )

    # -- channel protocol (engine-facing) -----------------------------------

    def poll_read(self, index: int, now: float):
        if index not in (0, 1):
            raise ProtocolError(f"{self.name}: bad read interface {index}")
        queue = self._queues[index]
        self._charge(1)  # fill/space update of one queue
        if not queue:
            return ("empty", None)
        ready, token = queue[0]
        if ready > now + 1e-12:
            return ("wait", ready)
        queue.popleft()
        self.reads[index] += 1
        if self._recovering is not None:
            recovering = self._recovering
            if self.reads[1 - recovering] >= self.reads[recovering]:
                self._recovering = None
        if self.traces is not None:
            self.traces[index].on_read(now, token.seqno, index)
        if self._m_div is not None:
            self._sample(now)
        self._check_divergence(now)
        self._wake(self._parked_writers)
        return ("ok", token)

    def poll_write(self, index: int, token: Token, now: float):
        if index != 0:
            raise ProtocolError(f"{self.name}: bad write interface {index}")
        self._charge(3)  # two space checks + enqueue bookkeeping
        # Occupancy-based detection (Section 3.3): a full healthy queue at a
        # write instant means that replica stopped (or slowed) consuming.
        for k in (0, 1):
            if not self.fault[k] and self.space(k) == 0:
                self._flag(
                    k,
                    MECHANISM_OVERFLOW,
                    now,
                    f"space_{k + 1}=0 at write of seq {token.seqno}",
                )
        targets = [k for k in (0, 1) if not self.fault[k]]
        if not targets:
            # Only reachable with strict_single_fault=False.
            return ("full", None)
        delay = self._latency(token) if self._latency is not None else 0.0
        for k in targets:
            self._queues[k].append((now + delay, token))
            if self.traces is not None:
                self.traces[k].on_write(now, token.seqno, k)
        self.writes += 1
        if self._m_div is not None:
            self._sample(now)
        for k in targets:
            self._wake(self._parked_readers[k])
        return ("ok", None)

    def park_reader(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_readers[index].append(handle)

    def park_writer(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_writers.append(handle)

    # -- internals ------------------------------------------------------------

    def _wake(self, parked: Deque) -> None:
        # FIFO wake order (see Fifo._wake): deterministic retry sequence.
        sim = self._sim
        while parked:
            handle = parked.popleft()
            handle.is_parked = False
            if sim is not None:
                sim.retry(handle)

    def __repr__(self) -> str:
        return (
            f"ReplicatorChannel({self.name}, fills="
            f"{self.fill(0)}/{self.fill(1)}, fault={self.fault})"
        )
