"""Runtime-checkable equivalence between reference and duplicated networks.

Theorem 2 states that for the same input sequence the duplicated network
produces the *same output token sequence* as the reference network, and
timestamps that still satisfy the consumer's timing requirements — even
under a single timing fault.  This module turns that statement into
concrete checks over recorded runs:

* **functional equivalence** — the consumer's payload sequences are equal
  (up to the shorter run's length when a fault truncates the experiment);
* **timing acceptability** — the duplicated network's consumer never
  stalls (its PJD demand schedule was always met), and the inter-arrival
  statistics match the reference's within the framework's overhead.

Lemma 1 (isolation) is validated separately by the property tests in
``tests/core/test_selector.py`` (one replica's back-pressure is unaffected
by the other replica's behaviour).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence

import numpy as np


def _payload_equal(a: Any, b: Any) -> bool:
    if isinstance(a, np.ndarray) or isinstance(b, np.ndarray):
        return bool(np.array_equal(a, b))
    if isinstance(a, (tuple, list)) and isinstance(b, (tuple, list)):
        return len(a) == len(b) and all(
            _payload_equal(x, y) for x, y in zip(a, b)
        )
    return bool(a == b)


def earlier_is_acceptable(reference_times: Sequence[float],
                          candidate_times: Sequence[float],
                          slack_ms: float = 0.0) -> bool:
    """Eq. 1 of the paper as a runtime check.

    If a timestamp sequence satisfies the consumer's requirements, the
    same token sequence arriving *no later* (element-wise, up to
    ``slack_ms``) also satisfies them.  Returns True iff
    ``candidate[j] <= reference[j] + slack`` for every common index —
    the sense in which the selector's earliest-of-pair merge can only
    improve timing.
    """
    return all(
        c <= r + slack_ms
        for r, c in zip(reference_times, candidate_times)
    )


def common_prefix_length(a: Sequence[Any], b: Sequence[Any]) -> int:
    """Length of the longest common prefix of two payload sequences."""
    length = 0
    for x, y in zip(a, b):
        if not _payload_equal(x, y):
            break
        length += 1
    return length


def output_values_equal(
    reference: Sequence[Any], duplicated: Sequence[Any]
) -> bool:
    """True iff the shorter sequence is a value-prefix of the longer.

    Kahn determinacy means a truncated run (e.g. one ended early by fault
    injection teardown) must still agree on every token it did produce.
    """
    shorter = min(len(reference), len(duplicated))
    return common_prefix_length(reference, duplicated) >= shorter


@dataclass
class EquivalenceReport:
    """Outcome of comparing a reference run against a duplicated run."""

    values_equal: bool
    prefix_length: int
    reference_count: int
    duplicated_count: int
    reference_stalls: int
    duplicated_stalls: int
    max_time_shift_ms: float
    mean_time_shift_ms: float

    @property
    def equivalent(self) -> bool:
        """Theorem 2 verdict: same values, and the duplicated consumer met
        its demand schedule whenever the reference one did."""
        timing_ok = (
            self.duplicated_stalls <= self.reference_stalls
            or self.duplicated_stalls == 0
        )
        return self.values_equal and timing_ok


def check_equivalence(
    reference_values: Sequence[Any],
    duplicated_values: Sequence[Any],
    reference_times: Sequence[float],
    duplicated_times: Sequence[float],
    reference_stalls: int = 0,
    duplicated_stalls: int = 0,
) -> EquivalenceReport:
    """Compare two consumer-side recordings (values + read-completion
    times) and produce an :class:`EquivalenceReport`."""
    prefix = common_prefix_length(reference_values, duplicated_values)
    shorter = min(len(reference_values), len(duplicated_values))
    shifts: List[float] = [
        d - r
        for r, d in zip(reference_times, duplicated_times)
    ]
    max_shift = max((abs(s) for s in shifts), default=0.0)
    mean_shift = float(np.mean([abs(s) for s in shifts])) if shifts else 0.0
    return EquivalenceReport(
        values_equal=prefix >= shorter,
        prefix_length=prefix,
        reference_count=len(reference_values),
        duplicated_count=len(duplicated_values),
        reference_stalls=reference_stalls,
        duplicated_stalls=duplicated_stalls,
        max_time_shift_ms=max_shift,
        mean_time_shift_ms=mean_shift,
    )
