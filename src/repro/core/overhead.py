"""Memory and runtime overhead accounting (Table 2, "Overhead" block).

The paper reports, per application:

* memory overhead of the framework — a small code/static-state footprint
  (2.1 KB at the selector, 1.5 KB at the replicator) plus token storage
  (``|S_1| + |S_2|`` tokens at the selector, ``|R_1| + |R_2|`` at the
  replicator), expressed as a percentage of the application code size;
* runtime overhead — the bookkeeping time the framework adds per token,
  expressed as a percentage of the application period.

On the SCC these were measured with the TSC; in this reproduction they are
*modelled*: every channel operation reports how many primitive counter
updates it performed (the ``op_cost`` hooks on the channels), and an
:class:`OverheadModel` converts primitive-operation counts into cycles and
microseconds using the paper's platform clock (533 MHz tiles).  The cycle
cost per primitive operation is a model constant calibrated so the MJPEG
numbers land in the paper's range; what the experiments *measure* is the
operation counts, which are exact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


class OpCounter:
    """Accumulates primitive-operation counts for one channel."""

    def __init__(self) -> None:
        self.operations = 0
        self.calls = 0

    def add(self, operations: int) -> None:
        """Channel hook: record one channel call of ``operations`` updates."""
        self.operations += operations
        self.calls += 1

    def __repr__(self) -> str:
        return f"OpCounter(ops={self.operations}, calls={self.calls})"


@dataclass(frozen=True)
class OverheadModel:
    """Platform model converting operation counts into time and bytes.

    Defaults reproduce the paper's SCC configuration: 533 MHz tile clock;
    the per-primitive cycle cost is a calibration constant representing the
    counter update plus its share of MPB access on the SCC.
    """

    tile_frequency_hz: float = 533e6
    cycles_per_primitive_op: int = 350
    replicator_code_bytes: int = 1536  # the paper's 1.5 KB
    selector_code_bytes: int = 2150  # the paper's 2.1 KB

    def runtime_us(self, operations: int) -> float:
        """Microseconds of framework bookkeeping for ``operations``."""
        cycles = operations * self.cycles_per_primitive_op
        return cycles / self.tile_frequency_hz * 1e6


@dataclass
class OverheadReport:
    """Overhead of one channel in one run (one Table 2 "Overhead" row)."""

    site: str
    code_bytes: int
    token_slots: int
    token_bytes: int
    per_token_us: float
    memory_fraction_of_app: float
    runtime_fraction_of_period: float
    total_operations: int = 0

    def memory_description(self) -> str:
        """Rendered like the paper: ``2.1KB+10Tokens (0.7%)``."""
        return (
            f"{self.code_bytes / 1024:.1f}KB+{self.token_slots}Tokens "
            f"({self.memory_fraction_of_app * 100:.2g}%)"
        )

    def runtime_description(self) -> str:
        """Rendered like the paper: ``6 us (0.02%)``."""
        return (
            f"{self.per_token_us:.2g} us "
            f"({self.runtime_fraction_of_period * 100:.2g}%)"
        )


def replicator_overhead(
    model: OverheadModel,
    counter: OpCounter,
    capacities: Tuple[int, int],
    token_bytes: int,
    tokens_transferred: int,
    app_code_bytes: int,
    period_ms: float,
) -> OverheadReport:
    """Build the replicator overhead row from a finished run."""
    slots = sum(capacities)
    per_token_ops = (
        counter.operations / tokens_transferred if tokens_transferred else 0.0
    )
    per_token_us = model.runtime_us(1) * per_token_ops
    return OverheadReport(
        site="replicator",
        code_bytes=model.replicator_code_bytes,
        token_slots=slots,
        token_bytes=slots * token_bytes,
        per_token_us=per_token_us,
        memory_fraction_of_app=model.replicator_code_bytes / app_code_bytes,
        runtime_fraction_of_period=(per_token_us / 1000.0) / period_ms,
        total_operations=counter.operations,
    )


def selector_overhead(
    model: OverheadModel,
    counter: OpCounter,
    capacities: Tuple[int, int],
    token_bytes: int,
    tokens_transferred: int,
    app_code_bytes: int,
    period_ms: float,
) -> OverheadReport:
    """Build the selector overhead row from a finished run."""
    slots = sum(capacities)
    per_token_ops = (
        counter.operations / tokens_transferred if tokens_transferred else 0.0
    )
    per_token_us = model.runtime_us(1) * per_token_ops
    return OverheadReport(
        site="selector",
        code_bytes=model.selector_code_bytes,
        token_slots=slots,
        token_bytes=slots * token_bytes,
        per_token_us=per_token_us,
        memory_fraction_of_app=model.selector_code_bytes / app_code_bytes,
        runtime_fraction_of_period=(per_token_us / 1000.0) / period_ms,
        total_operations=counter.operations,
    )
