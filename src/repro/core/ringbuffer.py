"""Ring-buffer replicator — the paper's suggested efficient variant.

Section 3.1: "More efficient implementations utilizing circular FIFO
buffers with two readers are possible, but we retain the simple design
for the present discussion."  This module implements that variant: a
*single* circular buffer storing each token once, with one cursor per
reader.  Behaviour is observably identical to the two-queue
:class:`~repro.core.replicator.ReplicatorChannel` for the producer and
every healthy replica (verified by the differential tests; the one
difference is that a *condemned* replica's leftover tokens are dropped
rather than retained), while token storage drops from
``|R_1| + |R_2|`` slots to ``max(|R_1|, |R_2|)`` — on the paper's MJPEG
numbers, from 5 to 3 encoded frames (50 KB -> 30 KB at 10 KB/frame).

Mechanics: tokens live in a ring of size ``max(capacities)``.  Reader
``k`` owns a cursor ``read_k`` (count of tokens consumed); the writer
owns ``written``.  ``fill_k = written - read_k`` and ``space_k =
|R_k| - fill_k``.  A slot is reclaimed once *every healthy* reader has
passed it, so the ring never needs more than ``max_k |R_k|`` live slots
(a reader further than ``|R_k|`` behind has already been flagged
faulty).  Detection rules are exactly those of Section 3.3.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, List, Optional, Tuple

from repro.core.detection import (
    MECHANISM_DIVERGENCE,
    MECHANISM_OVERFLOW,
    DetectionLog,
)
from repro.kpn.errors import ProtocolError, SimulationError
from repro.kpn.channel import ReadEndpoint, WriteEndpoint
from repro.kpn.tokens import Token


class RingBufferReplicator:
    """Single-storage replicator with per-reader cursors.

    Drop-in replacement for
    :class:`~repro.core.replicator.ReplicatorChannel` (same constructor
    shape, same engine-facing protocol, same detection semantics).
    """

    def __init__(
        self,
        name: str,
        capacities: Tuple[int, int],
        divergence_threshold: Optional[int] = None,
        transfer_latency: Optional[Callable[[Token], float]] = None,
        detection_log: Optional[DetectionLog] = None,
        strict_single_fault: bool = True,
        op_cost: Optional[Callable[[int], None]] = None,
    ) -> None:
        if len(capacities) != 2:
            raise ValueError("replicator needs exactly two capacities")
        if any(c < 1 for c in capacities):
            raise ValueError("capacities must be >= 1")
        if divergence_threshold is not None and divergence_threshold < 1:
            raise ValueError("divergence threshold must be >= 1")
        self.name = name
        self.capacities = tuple(capacities)
        self.threshold = divergence_threshold
        self._latency = transfer_latency
        self.log = detection_log if detection_log is not None else DetectionLog()
        self.strict_single_fault = strict_single_fault
        self._op_cost = op_cost
        self.ring_size = max(capacities)
        self._ring: List[Optional[Tuple[float, Token]]] = (
            [None] * self.ring_size
        )
        self.written = 0
        self.reads = [0, 0]
        self.fault = [False, False]
        self._sim = None
        self._parked_readers: Tuple[Deque, Deque] = (deque(), deque())
        self._parked_writers: Deque = deque()

    # -- wiring -------------------------------------------------------------

    def bind(self, sim) -> None:
        self._sim = sim

    @property
    def writer(self) -> WriteEndpoint:
        return WriteEndpoint(self, 0)

    def reader(self, replica: int) -> ReadEndpoint:
        if replica not in (0, 1):
            raise ValueError("replica index must be 0 or 1")
        return ReadEndpoint(self, replica)

    # -- state --------------------------------------------------------------

    def fill(self, replica: int) -> int:
        """Tokens written but not yet consumed by ``replica``."""
        return self.written - self.reads[replica]

    def space(self, replica: int) -> int:
        return self.capacities[replica] - self.fill(replica)

    @property
    def any_fault(self) -> bool:
        return any(self.fault)

    @property
    def live_slots(self) -> int:
        """Ring slots currently holding a token some healthy reader still
        needs — the storage the paper's comparison counts."""
        healthy = [k for k in (0, 1) if not self.fault[k]]
        if not healthy:
            return 0
        oldest = min(self.reads[k] for k in healthy)
        return self.written - oldest

    @property
    def writes(self) -> int:
        """Alias matching :class:`ReplicatorChannel`'s counter."""
        return self.written

    # -- detection ------------------------------------------------------------

    def _charge(self, operations: int) -> None:
        if self._op_cost is not None:
            self._op_cost(operations)

    def _flag(self, replica: int, mechanism: str, now: float,
              detail: str) -> None:
        if self.fault[replica]:
            return
        self.fault[replica] = True
        self.log.record(now, "replicator", replica, mechanism, detail)
        if self.strict_single_fault and all(self.fault):
            raise SimulationError(
                f"{self.name}: both replicas flagged faulty"
            )

    def quarantine(self, replica: int) -> None:
        """Multi-port coordination hook (see
        :class:`~repro.core.multiport.FaultCoordinator`)."""
        if not self.fault[replica]:
            self.fault[replica] = True

    def _check_divergence(self, now: float) -> None:
        if self.threshold is None or self.any_fault:
            return
        gap = self.reads[0] - self.reads[1]
        if gap > self.threshold:
            self._flag(1, MECHANISM_DIVERGENCE, now,
                       f"reads={self.reads[0]}/{self.reads[1]} "
                       f"D={self.threshold}")
        elif -gap > self.threshold:
            self._flag(0, MECHANISM_DIVERGENCE, now,
                       f"reads={self.reads[0]}/{self.reads[1]} "
                       f"D={self.threshold}")

    # -- channel protocol -----------------------------------------------------

    def poll_read(self, index: int, now: float):
        if index not in (0, 1):
            raise ProtocolError(f"{self.name}: bad read interface {index}")
        self._charge(1)
        if self.fault[index]:
            # A condemned replica is cut off entirely: its leftover slots
            # were reclaimed when its cursor was abandoned.
            return ("empty", None)
        if self.reads[index] >= self.written:
            return ("empty", None)
        slot = self._ring[self.reads[index] % self.ring_size]
        ready, token = slot
        if ready > now + 1e-12:
            return ("wait", ready)
        self.reads[index] += 1
        self._check_divergence(now)
        self._wake(self._parked_writers)
        return ("ok", token)

    def poll_write(self, index: int, token: Token, now: float):
        if index != 0:
            raise ProtocolError(f"{self.name}: bad write interface {index}")
        self._charge(3)
        for k in (0, 1):
            if not self.fault[k] and self.space(k) == 0:
                self._flag(k, MECHANISM_OVERFLOW, now,
                           f"space_{k + 1}=0 at write of seq "
                           f"{token.seqno}")
        healthy = [k for k in (0, 1) if not self.fault[k]]
        if not healthy:
            return ("full", None)
        # A faulty reader's cursor is abandoned: advance it so the ring
        # slot count follows only the healthy readers.
        for k in (0, 1):
            if self.fault[k]:
                self.reads[k] = max(self.reads[k], self.written)
        delay = self._latency(token) if self._latency is not None else 0.0
        self._ring[self.written % self.ring_size] = (now + delay, token)
        self.written += 1
        for k in healthy:
            self._wake(self._parked_readers[k])
        return ("ok", None)

    def park_reader(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_readers[index].append(handle)

    def park_writer(self, index: int, handle) -> None:
        if not handle.is_parked:
            handle.is_parked = True
            self._parked_writers.append(handle)

    def _wake(self, parked: Deque) -> None:
        # FIFO wake order (see Fifo._wake): deterministic retry sequence.
        sim = self._sim
        while parked:
            handle = parked.popleft()
            handle.is_parked = False
            if sim is not None:
                sim.retry(handle)

    def __repr__(self) -> str:
        return (
            f"RingBufferReplicator({self.name}, written={self.written}, "
            f"reads={self.reads}, fault={self.fault})"
        )
