"""Strict heartbeat monitoring (the "too restrictive" approach).

A heartbeat monitor expects one event in every period-aligned slot.  On a
jitter-free stream it detects immediately; on any realistically jittered
stream it false-positives, which is why the paper dismisses heartbeat
monitoring for dataflow process networks.  The ablation benchmark
quantifies the false-positive rate as a function of stream jitter.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.monitor import MonitorDetection, PollingMonitor
from repro.kpn.trace import ChannelTrace


class HeartbeatMonitor(PollingMonitor):
    """Slot-based heartbeat checker.

    Stream ``i`` must produce at least one event in every window
    ``[k * period, (k + 1) * period + grace)``; a missed slot flags the
    stream.  ``grace`` defaults to zero — the strict version.
    """

    def __init__(
        self,
        name: str,
        poll_interval: float,
        stop_time: float,
        streams: Sequence[ChannelTrace],
        period: float,
        grace: float = 0.0,
        event_kind: str = "write",
    ) -> None:
        super().__init__(name, poll_interval, stop_time, streams, event_kind)
        if period <= 0:
            raise ValueError("period must be positive")
        self.period = period
        self.grace = grace

    def check(self, now: float) -> List[MonitorDetection]:
        detections: List[MonitorDetection] = []
        # The slot whose deadline most recently passed.
        completed_slots = int((now - self.grace) / self.period)
        if completed_slots < 1:
            return detections
        for index in range(len(self.streams)):
            times = [
                e.time
                for e in self.streams[index].events
                if e.kind == self.event_kind
            ]
            for slot in range(completed_slots):
                window_start = slot * self.period
                window_end = (slot + 1) * self.period + self.grace
                satisfied = any(
                    window_start <= t < window_end for t in times
                )
                if not satisfied:
                    detections.append(
                        MonitorDetection(
                            time=now,
                            stream=index,
                            reason=f"missed heartbeat slot {slot}",
                        )
                    )
                    break
        return detections
