"""Polling monitor infrastructure.

Baseline detectors are simulated processes that wake up every
``poll_interval`` ms (this is the runtime-timer dependency the paper's
approach eliminates) and inspect the event history of the streams they
watch — a :class:`~repro.kpn.trace.ChannelTrace` recorded by the channel
under observation.  Because the simulator is single-threaded, a poll at
virtual time ``t`` sees exactly the events with timestamps ``<= t``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.kpn.operations import Delay
from repro.kpn.process import Process
from repro.kpn.trace import ChannelTrace


@dataclass(frozen=True)
class MonitorDetection:
    """One baseline detection event."""

    time: float
    stream: int
    reason: str


class PollingMonitor(Process):
    """Base class: poll every ``poll_interval`` until ``stop_time``.

    Subclasses implement :meth:`check(now)` returning a list of
    :class:`MonitorDetection`.  Once a stream is flagged it is not
    re-flagged.
    """

    def __init__(
        self,
        name: str,
        poll_interval: float,
        stop_time: float,
        streams: Sequence[ChannelTrace],
        event_kind: str = "write",
    ) -> None:
        super().__init__(name)
        if poll_interval <= 0:
            raise ValueError("poll interval must be positive")
        self.poll_interval = poll_interval
        self.stop_time = stop_time
        self.streams = list(streams)
        self.event_kind = event_kind
        self.detections: List[MonitorDetection] = []
        self._flagged = [False] * len(self.streams)
        self.polls = 0

    def check(self, now: float) -> List[MonitorDetection]:
        """Inspect the streams; return new detections."""
        raise NotImplementedError

    def first_detection(self, stream: Optional[int] = None
                        ) -> Optional[MonitorDetection]:
        """Earliest detection (optionally for one stream)."""
        for detection in self.detections:
            if stream is None or detection.stream == stream:
                return detection
        return None

    def behavior(self):
        while self.now < self.stop_time:
            yield Delay(self.poll_interval)
            self.polls += 1
            for detection in self.check(self.now):
                if not self._flagged[detection.stream]:
                    self._flagged[detection.stream] = True
                    self.detections.append(detection)

    # -- helpers for subclasses ------------------------------------------------

    def last_event_time(self, stream: int) -> Optional[float]:
        """Timestamp of the stream's most recent observed event."""
        events = self.streams[stream].events
        for event in reversed(events):
            if event.kind == self.event_kind:
                return event.time
        return None

    def recent_event_times(self, stream: int, count: int) -> List[float]:
        """The last ``count`` observed timestamps (oldest first)."""
        times = [
            e.time
            for e in self.streams[stream].events
            if e.kind == self.event_kind
        ]
        return times[-count:]
