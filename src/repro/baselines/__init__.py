"""Baseline fault-detection approaches the paper compares against.

* :class:`~repro.baselines.distance.DistanceFunctionMonitor` — the
  state-of-the-art comparison of Table 3: arrival-pattern monitoring with
  l-repetitive distance functions (Neukirchner et al., RTSS 2012),
  modified for the paper's fail-silent fault model and driven by a
  polling timer (the paper uses a 1 ms poll);
* :class:`~repro.baselines.watchdog.WatchdogMonitor` — the simple timeout
  approach the introduction calls "too restrictive" for bursty streams;
* :class:`~repro.baselines.heartbeat.HeartbeatMonitor` — strict-period
  heartbeat monitoring, which false-positives on any jittered stream
  (quantified by the ablation benchmarks).

All baselines *require runtime timer support* (the polling loop), which is
exactly the resource the paper's approach avoids.
"""

from repro.baselines.monitor import MonitorDetection, PollingMonitor
from repro.baselines.distance import (
    DistanceBounds,
    DistanceFunctionMonitor,
    l_repetitive_bounds,
)
from repro.baselines.watchdog import WatchdogMonitor
from repro.baselines.heartbeat import HeartbeatMonitor

__all__ = [
    "MonitorDetection",
    "PollingMonitor",
    "DistanceBounds",
    "DistanceFunctionMonitor",
    "l_repetitive_bounds",
    "WatchdogMonitor",
    "HeartbeatMonitor",
]
