"""Watchdog-timeout monitoring (the "simple approach" of Section 1).

A watchdog fires when no event has been observed for a fixed timeout.  It
works for strictly periodic streams (timeout slightly above the period)
but for bursty dataflow it faces the dilemma the paper describes: a tight
timeout false-positives on legal bursts/gaps, a loose one detects late.
The ablation benchmark sweeps the timeout to exhibit exactly that
trade-off.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.baselines.monitor import MonitorDetection, PollingMonitor
from repro.kpn.trace import ChannelTrace


class WatchdogMonitor(PollingMonitor):
    """Fixed-timeout watchdog over one or more streams."""

    def __init__(
        self,
        name: str,
        poll_interval: float,
        stop_time: float,
        streams: Sequence[ChannelTrace],
        timeout: float,
        event_kind: str = "write",
    ) -> None:
        super().__init__(name, poll_interval, stop_time, streams, event_kind)
        if timeout <= 0:
            raise ValueError("timeout must be positive")
        self.timeout = timeout

    def check(self, now: float) -> List[MonitorDetection]:
        detections: List[MonitorDetection] = []
        for index in range(len(self.streams)):
            last = self.last_event_time(index)
            if last is None:
                continue  # arms at the first observed event
            if now - last > self.timeout:
                detections.append(
                    MonitorDetection(
                        time=now,
                        stream=index,
                        reason=f"watchdog gap {now - last:.3f} > "
                               f"{self.timeout:.3f}",
                    )
                )
        return detections
