"""Distance-function arrival-pattern monitoring (the paper's Table 3
baseline, after Neukirchner et al., "Monitoring arbitrary activation
patterns in real-time systems", RTSS 2012).

A general *distance function* bounds the admissible time distance between
an event and its ``k``-th successor for every ``k``; an *l-repetitive*
approximation stores only the first ``l`` distances and extrapolates —
trading monitoring precision for memory, exactly the approximation the
paper's related-work section discusses (over-approximation can cause
false positives/negatives).

For a PJD stream the exact bounds are::

    d_min(k) = max(k * period - jitter, k * min_distance)
    d_max(k) = k * period + jitter

The monitor, as modified by the paper for the fail-silent fault model,
polls every ``poll_interval`` and flags a stream faulty when the time
since its most recent event exceeds ``d_max(1)`` (the next event is
overdue) — detecting stopped or slowed replicas.  The symmetric over-rate
check (more events in a window than ``d_min`` admits) is implemented too,
for completeness and for the heartbeat/ablation studies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from repro.baselines.monitor import MonitorDetection, PollingMonitor
from repro.kpn.trace import ChannelTrace
from repro.rtc.pjd import PJD


@dataclass(frozen=True)
class DistanceBounds:
    """l-repetitive distance bounds for one stream."""

    d_min: tuple
    d_max: tuple

    @property
    def l(self) -> int:
        return len(self.d_min)


def l_repetitive_bounds(model: PJD, l: int = 1, margin: float = 1e-6
                        ) -> DistanceBounds:
    """Exact l-repetitive distance bounds of a PJD stream.

    ``margin`` widens the bounds infinitesimally so floating-point event
    times on the boundary never false-positive.
    """
    if l < 1:
        raise ValueError("l must be >= 1")
    d_min: List[float] = []
    d_max: List[float] = []
    for k in range(1, l + 1):
        low = max(k * model.period - model.jitter, k * model.min_distance)
        d_min.append(max(low - margin, 0.0))
        d_max.append(k * model.period + model.jitter + margin)
    return DistanceBounds(tuple(d_min), tuple(d_max))


class DistanceFunctionMonitor(PollingMonitor):
    """Polling distance-function monitor over one or more streams.

    Parameters
    ----------
    name, poll_interval, stop_time, streams, event_kind:
        See :class:`~repro.baselines.monitor.PollingMonitor`.  The paper's
        comparison polls every 1 ms and observes the replica streams at
        the replicator (their ``read`` events) and selector (``write``).
    bounds:
        One :class:`DistanceBounds` per stream.
    check_overrate:
        Also flag streams that are *too fast* (violate ``d_min``) —
        disabled in the paper's fail-silent comparison.
    """

    def __init__(
        self,
        name: str,
        poll_interval: float,
        stop_time: float,
        streams: Sequence[ChannelTrace],
        bounds: Sequence[DistanceBounds],
        event_kind: str = "write",
        check_overrate: bool = False,
    ) -> None:
        super().__init__(name, poll_interval, stop_time, streams, event_kind)
        if len(bounds) != len(self.streams):
            raise ValueError("need one DistanceBounds per stream")
        self.bounds = list(bounds)
        self.check_overrate = check_overrate

    def check(self, now: float) -> List[MonitorDetection]:
        detections: List[MonitorDetection] = []
        for index, bound in enumerate(self.bounds):
            last = self.last_event_time(index)
            if last is None:
                # Not armed yet: the monitor starts judging a stream at its
                # first event (standard practice — a startup gap is not a
                # fault).
                continue
            if now - last > bound.d_max[0]:
                detections.append(
                    MonitorDetection(
                        time=now,
                        stream=index,
                        reason=(
                            f"gap {now - last:.3f} > d_max(1)="
                            f"{bound.d_max[0]:.3f}"
                        ),
                    )
                )
                continue
            if self.check_overrate:
                detections.extend(self._overrate(index, bound, now))
        return detections

    def _overrate(self, index: int, bound: DistanceBounds, now: float
                  ) -> List[MonitorDetection]:
        times = self.recent_event_times(index, bound.l + 1)
        detections: List[MonitorDetection] = []
        for k in range(1, len(times)):
            gap = times[-1] - times[-1 - k]
            if gap < bound.d_min[k - 1]:
                detections.append(
                    MonitorDetection(
                        time=now,
                        stream=index,
                        reason=(
                            f"distance({k}) {gap:.3f} < d_min({k})="
                            f"{bound.d_min[k - 1]:.3f}"
                        ),
                    )
                )
                break
        return detections
