#!/usr/bin/env python
"""Repo-root entry point for the perf-regression harness.

Thin shim over :mod:`repro.tools.bench_compare` that anchors the repo
root at this file's location, so ``python tools/bench_compare.py`` works
from anywhere without installing the package.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.tools.bench_compare import main  # noqa: E402

if __name__ == "__main__":
    argv = sys.argv[1:]
    if not any(arg.startswith("--repo-root") for arg in argv):
        argv = ["--repo-root", str(REPO_ROOT)] + argv
    sys.exit(main(argv))
