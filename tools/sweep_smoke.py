#!/usr/bin/env python
"""Repo-root entry point for the sweep-executor smoke check.

Thin shim over :mod:`repro.tools.sweep_smoke` that anchors ``src/`` on
``sys.path``, so ``python tools/sweep_smoke.py`` works from a bare
checkout without installing the package.
"""

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.tools.sweep_smoke import main  # noqa: E402

if __name__ == "__main__":
    sys.exit(main())
